(* Tests for the experiment layer (lib/exp): spec JSON round-trips over
   randomized scenarios, registry catalogue integrity, and the sweep
   runner's parallel bit-identity, failure isolation, and manifest
   provenance. Simulation configs here are tiny (1-2 ms windows) so the
   runner properties stay fast under `dune runtest`. *)

module Spec = Exp.Spec
module Registry = Exp.Registry
module Runner = Exp.Runner
module Outcome = Exp.Outcome
module Time = Engine.Time
module Json = Obs.Json
module Gen = QCheck.Gen

let qtest = QCheck_alcotest.to_alcotest

(* --- generators ------------------------------------------------------ *)

let protocol_gen =
  Gen.oneof
    [
      Gen.map2
        (fun g k -> Spec.Dctcp { g; k_bytes = k })
        (Gen.float_range 0.001 1.0)
        (Gen.int_range 1500 200_000);
      Gen.map3
        (fun g k1 dk -> Spec.Dt_dctcp { g; k1_bytes = k1; k2_bytes = k1 + dk })
        (Gen.float_range 0.001 1.0)
        (Gen.int_range 1500 100_000)
        (Gen.int_range 0 100_000);
      Gen.return Spec.Reno;
      Gen.map
        (fun k -> Spec.Ecn_reno { k_bytes = k })
        (Gen.int_range 1500 200_000);
      Gen.return Spec.Newreno;
      Gen.map2
        (fun g k -> Spec.Dctcp_scaled { g; k_frac = k })
        (Gen.float_range 0.001 1.0)
        (Gen.float_range 0.01 1.0);
      Gen.map3
        (fun g k1 dk ->
          Spec.Dt_dctcp_scaled
            { g; k1_frac = k1; k2_frac = Float.min 1. (k1 +. dk) })
        (Gen.float_range 0.001 1.0)
        (Gen.float_range 0.01 0.9)
        (Gen.float_range 0. 0.1);
    ]

(* Full-width seeds: the decimal-string encoding must survive values far
   outside the float-exact integer range. *)
let seed_gen =
  Gen.map2
    (fun hi lo -> Int64.(logxor (shift_left (of_int hi) 32) (of_int lo)))
    Gen.int Gen.int

let span_gen = Gen.map Int64.of_int (Gen.int_range 0 2_000_000_000)

let longlived_gen =
  Gen.map
    (fun ((n, warmup, measure), (sampled, seed)) ->
      let trace_sampling =
        if sampled then Some (Time.span_of_us 50.) else None
      in
      Spec.Longlived
        {
          Workloads.Longlived.default_config with
          n_flows = n;
          warmup;
          measure;
          trace_sampling;
          seed;
        })
    (Gen.pair
       (Gen.triple (Gen.int_range 1 128) span_gen span_gen)
       (Gen.pair Gen.bool seed_gen))

let incast_gen =
  Gen.map
    (fun ((n, bytes, repeats), (sack, start_jitter, seed)) ->
      Spec.Incast
        {
          config =
            {
              Workloads.Incast.default_config with
              n_flows = n;
              bytes_per_flow = bytes;
              repeats;
              start_jitter;
              seed;
            };
          sack;
        })
    (Gen.pair
       (Gen.triple (Gen.int_range 1 64)
          (Gen.int_range 1 1_000_000)
          (Gen.int_range 1 5))
       (Gen.triple Gen.bool span_gen seed_gen))

let completion_gen =
  Gen.map
    (fun ((n, total, repeats), seed) ->
      Spec.Completion
        {
          Workloads.Completion.default_config with
          n_flows = n;
          total_bytes = total;
          repeats;
          seed;
        })
    (Gen.pair
       (Gen.triple (Gen.int_range 1 64)
          (Gen.int_range 1 4_000_000)
          (Gen.int_range 1 5))
       seed_gen)

let dynamic_gen =
  Gen.map
    (fun ((rate, segments, duration), seed) ->
      Spec.Dynamic
        {
          Workloads.Dynamic.default_config with
          arrival_rate = rate;
          short_flow_segments = segments;
          duration;
          seed;
        })
    (Gen.pair
       (Gen.triple (Gen.float_range 1.0 20_000.0) (Gen.int_range 1 100)
          span_gen)
       seed_gen)

let convergence_gen =
  Gen.map
    (fun ((n, join_interval, hold), (band, seed)) ->
      Spec.Convergence
        {
          Workloads.Convergence.default_config with
          n_flows = n;
          join_interval;
          hold;
          convergence_band = band;
          seed;
        })
    (Gen.pair
       (Gen.triple (Gen.int_range 1 16) span_gen span_gen)
       (Gen.pair (Gen.float_range 0.01 0.9) seed_gen))

let deadline_gen =
  Gen.map
    (fun ((n, deadline, deadline_spread), (d2tcp, seed)) ->
      Spec.Deadline
        {
          config =
            {
              Workloads.Deadline.default_config with
              n_flows = n;
              deadline;
              deadline_spread;
              seed;
            };
          d2tcp;
        })
    (Gen.pair
       (Gen.triple (Gen.int_range 1 32) span_gen span_gen)
       (Gen.pair Gen.bool seed_gen))

let fattree_gen =
  Gen.map
    (fun ((k, fanin, long_flows), (incast_bytes, time_cap, seed)) ->
      Spec.Fattree
        {
          Workloads.Fattree.default_config with
          k = 2 * k;
          incast_fanin = fanin;
          long_flows;
          incast_bytes;
          time_cap;
          seed;
        })
    (Gen.pair
       (Gen.triple (Gen.int_range 1 5) (Gen.int_range 1 64)
          (Gen.int_range 0 32))
       (Gen.triple (Gen.int_range 1 4_000_000) span_gen seed_gen))

let workload_gen =
  Gen.oneof
    [
      longlived_gen;
      incast_gen;
      completion_gen;
      dynamic_gen;
      convergence_gen;
      deadline_gen;
      fattree_gen;
    ]

(* Fault plans: valid by construction (windows sorted and disjoint,
   rates in range) so the round-trip property never trips Plan.validate. *)
let faults_gen =
  let window_list_gen =
    Gen.map
      (fun bounds ->
        let sorted = List.sort_uniq Int.compare bounds in
        let rec pair = function
          | lo :: hi :: rest -> (lo, hi) :: pair rest
          | _ -> []
        in
        pair (List.map Int64.of_int sorted))
      (Gen.list_size (Gen.int_range 0 6) (Gen.int_range 0 2_000_000_000))
  in
  let suppression_gen =
    Gen.oneof
      [
        Gen.return Fault.Plan.Keep_marks;
        Gen.return Fault.Plan.Suppress_all;
        Gen.map
          (fun (at, d) ->
            Fault.Plan.Suppress_window
              { at; until = Int64.add at (Int64.of_int d) })
          (Gen.pair span_gen (Gen.int_range 1 1_000_000_000));
        Gen.map (fun p -> Fault.Plan.Suppress_prob p) (Gen.float_range 0. 1.);
      ]
  in
  Gen.map3
    (fun flaps (loss_rate, jitter_max) (rate_changes, suppression) ->
      {
        Fault.Plan.flaps =
          List.map
            (fun (down_at, up_at) -> { Fault.Plan.down_at; up_at })
            flaps;
        loss_rate;
        jitter_max;
        rate_changes =
          List.map
            (fun (at, until) -> { Fault.Plan.at; until; factor = 0.5 })
            rate_changes;
        suppression;
      })
    window_list_gen
    (Gen.pair (Gen.float_range 0. 0.99) span_gen)
    (Gen.pair window_list_gen suppression_gen)

(* Shared-pool configs: alpha restricted to exact multiples of 1/1024 so
   the round-trip property (floats compare by bit pattern) and the
   manager's x1024 quantisation agree on the value being tested. *)
let buffer_gen =
  Gen.oneof
    [
      Gen.return Net.Buffer_mgr.Static;
      Gen.map2
        (fun pool_bytes a ->
          Net.Buffer_mgr.Dynamic_threshold
            { pool_bytes; alpha = float_of_int a /. 1024. })
        (Gen.int_range 1_500 10_000_000)
        (Gen.int_range 1 8192);
    ]

let spec_gen =
  Gen.map3
    (fun name protocol (workload, (faults, buffer)) ->
      { Spec.name; protocol; workload; faults; buffer })
    (Gen.string_size ~gen:Gen.printable (Gen.int_range 0 16))
    protocol_gen
    (Gen.pair workload_gen (Gen.pair (Gen.opt faults_gen) buffer_gen))

let spec_arb = QCheck.make ~print:Spec.to_string spec_gen

(* --- spec serialization ---------------------------------------------- *)

let prop_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"spec JSON round-trip (of_string/to_string)"
    spec_arb
    (fun s ->
      match Spec.of_string (Spec.to_string s) with
      | Ok s' ->
          Spec.equal s s' && Json.equal (Spec.to_json s) (Spec.to_json s')
      | Error e -> QCheck.Test.fail_reportf "of_string: %s" e)

let smoke_longlived ~name ~seed =
  {
    Spec.name;
    protocol = Registry.sim_dt;
    workload =
      Spec.Longlived
        {
          Workloads.Longlived.default_config with
          n_flows = 2;
          warmup = Time.span_of_ms 1.;
          measure = Time.span_of_ms 2.;
          seed;
        };
    faults = None;
    buffer = Net.Buffer_mgr.Static;
  }

let smoke_incast ~name ~seed =
  {
    Spec.name;
    protocol = Registry.testbed_dctcp;
    workload =
      Spec.Incast
        {
          config =
            {
              Workloads.Incast.default_config with
              n_flows = 4;
              repeats = 1;
              time_cap = Time.span_of_sec 2.;
              seed;
            };
          sack = false;
        };
    faults = None;
    buffer = Net.Buffer_mgr.Static;
  }

let test_extreme_seeds () =
  let base = smoke_longlived ~name:"seed/extreme" ~seed:0L in
  List.iter
    (fun seed ->
      let s = Spec.with_seed seed base in
      Alcotest.(check int64) "with_seed applies" seed (Spec.seed s);
      match Spec.of_string (Spec.to_string s) with
      | Ok s' -> Alcotest.(check int64) "seed survives JSON" seed (Spec.seed s')
      | Error e -> Alcotest.fail e)
    [ Int64.min_int; Int64.max_int; -1L; 0L; 4_611_686_018_427_387_904L ]

let test_of_json_strict () =
  (match Spec.of_string "{}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty object accepted");
  (match Spec.of_string "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  (* A field-complete spec with one config field removed must be rejected:
     of_json is strict so old manifests fail loudly, never fill defaults. *)
  let full = Spec.to_string (smoke_longlived ~name:"strict" ~seed:3L) in
  match Json.parse full with
  | Error e -> Alcotest.fail e
  | Ok json ->
      let rec drop_seed = function
        | Json.Obj fields ->
            Json.Obj
              (List.filter_map
                 (fun (k, v) ->
                   if String.equal k "seed" then None
                   else Some (k, drop_seed v))
                 fields)
        | j -> j
      in
      (match Spec.of_json (drop_seed json) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "spec without seed field accepted")

(* A Static buffer must be invisible in the serialized spec — that is
   what keeps every pre-buffer-manager manifest parseable and every
   baseline family's spec JSON byte-identical to what it was before the
   shared pool existed. *)
let test_buffer_json_default () =
  let s = smoke_longlived ~name:"buffer/static" ~seed:1L in
  (match Spec.to_json s with
  | Json.Obj fields ->
      Alcotest.(check bool) "buffer key omitted when Static" false
        (List.mem_assoc "buffer" fields)
  | _ -> Alcotest.fail "spec json is not an object");
  (match Spec.of_string (Spec.to_string s) with
  | Ok s' ->
      Alcotest.(check bool) "absent buffer parses as Static" true
        (Net.Buffer_mgr.config_equal s'.Spec.buffer Net.Buffer_mgr.Static)
  | Error e -> Alcotest.fail e);
  let dt =
    {
      s with
      Spec.buffer =
        Net.Buffer_mgr.Dynamic_threshold { pool_bytes = 125_000; alpha = 0.5 };
    }
  in
  (match Spec.to_json dt with
  | Json.Obj fields ->
      Alcotest.(check bool) "buffer key present for a shared pool" true
        (List.mem_assoc "buffer" fields)
  | _ -> Alcotest.fail "spec json is not an object");
  match Spec.of_string (Spec.to_string dt) with
  | Ok dt' ->
      Alcotest.(check bool) "Dynamic_threshold round-trips" true
        (Spec.equal dt dt')
  | Error e -> Alcotest.fail e

(* --- registry catalogue ---------------------------------------------- *)

let test_registry_catalogue () =
  let entries = Registry.all () in
  let names = Registry.names () in
  Alcotest.(check int) "names match entries" (List.length entries)
    (List.length names);
  Alcotest.(check int) "entry names unique" (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun (e : Registry.entry) ->
      (match Registry.find e.name with
      | Some found ->
          Alcotest.(check string) "find resolves" e.name found.Registry.name
      | None -> Alcotest.fail ("find misses " ^ e.name));
      let specs = e.specs () in
      Alcotest.(check bool) (e.name ^ " non-empty") true (specs <> []);
      let snames = List.map (fun (s : Spec.t) -> s.Spec.name) specs in
      Alcotest.(check int)
        (e.name ^ " spec names unique")
        (List.length snames)
        (List.length (List.sort_uniq String.compare snames));
      List.iter
        (fun s ->
          match Spec.of_string (Spec.to_string s) with
          | Ok s' ->
              if not (Spec.equal s s') then
                Alcotest.fail ("round-trip changed " ^ s.Spec.name)
          | Error err -> Alcotest.fail (s.Spec.name ^ ": " ^ err))
        specs)
    entries;
  match Registry.find "no-such-entry" with
  | None -> ()
  | Some _ -> Alcotest.fail "find invented an entry"

(* The buffer-manager refactor must not move any pre-existing baseline:
   every registry family except the new fig_buffer sweep stays on the
   Static (private-capacity) path, and a spec read back from an old
   manifest (no buffer key) runs bit-identically to the explicit-Static
   spec. *)
let test_baseline_families_stay_static () =
  List.iter
    (fun (e : Registry.entry) ->
      if not (String.equal e.name "fig_buffer") then
        List.iter
          (fun (s : Spec.t) ->
            if
              not
                (Net.Buffer_mgr.config_equal s.Spec.buffer
                   Net.Buffer_mgr.Static)
            then Alcotest.fail (e.name ^ "/" ^ s.Spec.name ^ " is not Static"))
          (e.specs ()))
    (Registry.all ())

(* --- runner ----------------------------------------------------------- *)

(* Wall-clock fields (wall_clock_s, events_per_s) legitimately differ
   between runs; everything the simulation computed must not. *)
let manifest_deterministic_eq (a : Obs.Manifest.t) (b : Obs.Manifest.t) =
  String.equal a.Obs.Manifest.name b.Obs.Manifest.name
  && Int64.equal a.Obs.Manifest.seed b.Obs.Manifest.seed
  && a.Obs.Manifest.events = b.Obs.Manifest.events
  && List.length a.Obs.Manifest.metrics = List.length b.Obs.Manifest.metrics
  && List.for_all2
       (fun (k1, v1) (k2, v2) ->
         String.equal k1 k2
         && Int64.equal (Int64.bits_of_float v1) (Int64.bits_of_float v2))
       a.Obs.Manifest.metrics b.Obs.Manifest.metrics
  && Json.equal
       (Json.Obj a.Obs.Manifest.params)
       (Json.Obj b.Obs.Manifest.params)

let outcome_bitwise_eq (a : Runner.outcome) (b : Runner.outcome) =
  Spec.equal a.Runner.spec b.Runner.spec
  && Outcome.equal a.Runner.result b.Runner.result
  && manifest_deterministic_eq a.Runner.manifest b.Runner.manifest

let prop_parallel_identity =
  QCheck.Test.make ~count:3 ~name:"run ~jobs:4 bit-identical to ~jobs:1"
    QCheck.(make ~print:string_of_int Gen.(int_range 0 10_000))
    (fun base ->
      let seed i = Int64.of_int ((base * 13) + i + 1) in
      let specs =
        [
          smoke_longlived ~name:"par/ll-a" ~seed:(seed 0);
          smoke_incast ~name:"par/incast" ~seed:(seed 1);
          smoke_longlived ~name:"par/ll-b" ~seed:(seed 2);
          smoke_longlived ~name:"par/ll-c" ~seed:(seed 3);
        ]
      in
      let serial = Runner.run ~jobs:1 specs in
      let par = Runner.run ~jobs:4 specs in
      Array.length serial = Array.length par
      && Array.for_all2 outcome_bitwise_eq serial par)

let test_failure_isolation () =
  let bad =
    {
      Spec.name = "iso/bad";
      protocol = Registry.sim_dctcp;
      workload =
        Spec.Longlived
          { Workloads.Longlived.default_config with n_flows = 0 };
      faults = None;
      buffer = Net.Buffer_mgr.Static;
    }
  in
  let good_a = smoke_longlived ~name:"iso/good-a" ~seed:11L in
  let good_b = smoke_incast ~name:"iso/good-b" ~seed:12L in
  let outcomes = Runner.run ~jobs:2 [ good_a; bad; good_b ] in
  Alcotest.(check int) "slot per spec" 3 (Array.length outcomes);
  (match outcomes.(1).Runner.result with
  | Outcome.Failed { spec; error } ->
      Alcotest.(check string) "failed slot names its spec" "iso/bad" spec;
      Alcotest.(check bool) "error is non-empty" true (String.length error > 0)
  | Outcome.Done _ -> Alcotest.fail "zero-flow spec reported Done");
  (* The failure must not perturb its neighbours: each good slot is
     bit-identical to running that spec alone. *)
  Alcotest.(check bool) "good-a unperturbed" true
    (outcome_bitwise_eq outcomes.(0) (Runner.run_one good_a));
  Alcotest.(check bool) "good-b unperturbed" true
    (outcome_bitwise_eq outcomes.(2) (Runner.run_one good_b))

let test_static_run_matches_prebuffer_spec () =
  (* A spec deserialized from its pre-buffer-manager JSON form (no
     buffer key) must run bit-identically to the explicit-Static one:
     the refactor's "old behavior preserved" claim, end to end. *)
  let s = smoke_longlived ~name:"regress/static" ~seed:23L in
  let from_old_json =
    match Spec.of_string (Spec.to_string s) with
    | Ok s' -> s'
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "outcomes bit-identical" true
    (outcome_bitwise_eq (Runner.run_one s) (Runner.run_one from_old_json))

let test_manifest_reconstruction () =
  let spec = smoke_longlived ~name:"manifest/reconstruct" ~seed:42L in
  let o = Runner.run_one spec in
  (match o.Runner.result with
  | Outcome.Done _ -> ()
  | Outcome.Failed { error; _ } -> Alcotest.fail error);
  Alcotest.(check bool) "events recorded" true
    (o.Runner.manifest.Obs.Manifest.events > 0);
  Alcotest.(check int64) "manifest seed is the spec seed" 42L
    o.Runner.manifest.Obs.Manifest.seed;
  (* Reconstruct through the serialized form, exactly as a reader of the
     manifest file would. *)
  let buf = Buffer.create 256 in
  Json.to_buffer buf (Obs.Manifest.to_json o.Runner.manifest);
  match Json.parse (Buffer.contents buf) with
  | Error e -> Alcotest.fail e
  | Ok json -> (
      match Obs.Manifest.of_json json with
      | Error e -> Alcotest.fail e
      | Ok m -> (
          match List.assoc_opt "spec" m.Obs.Manifest.params with
          | None -> Alcotest.fail "manifest lacks a spec param"
          | Some spec_json -> (
              match Spec.of_json spec_json with
              | Ok s' ->
                  Alcotest.(check bool) "spec reconstructed bit-for-bit" true
                    (Spec.equal spec s')
              | Error e -> Alcotest.fail e)))

(* --- streaming analysis: online (teed into the run) and offline
   (replaying the same records through a fresh analyzer, via the JSONL
   wire format) must produce bit-identical blocks. --- *)

let test_online_offline_analysis () =
  let spec = smoke_longlived ~name:"analysis/equiv" ~seed:7L in
  let records = ref [] in
  let collector =
    Obs.Trace.create ~classes:Obs.Analyze.required_classes
      (Obs.Trace.Fn (fun r -> records := r :: !records))
  in
  let o = Runner.run_one ~tracer:collector ~analyze:true spec in
  (match o.Runner.result with
  | Outcome.Done _ -> ()
  | Outcome.Failed { error; _ } -> Alcotest.fail error);
  let online =
    match o.Runner.manifest.Obs.Manifest.analysis with
    | Some j -> j
    | None -> Alcotest.fail "analyze:true produced no analysis block"
  in
  let cfg =
    match Runner.analysis_config spec with
    | Some c -> c
    | None -> Alcotest.fail "longlived spec has no analysis config"
  in
  let offline = Obs.Analyze.create cfg in
  List.iter
    (fun r ->
      (* Round-trip each record through its JSONL form, exactly as
         `dtsim analyze` reads a trace file back. *)
      let buf = Buffer.create 128 in
      Json.to_buffer buf (Obs.Trace.record_to_json r);
      match Json.parse (Buffer.contents buf) with
      | Error e -> Alcotest.fail e
      | Ok j -> (
          match Obs.Trace.record_of_json j with
          | Error e -> Alcotest.fail e
          | Ok r' -> Obs.Analyze.feed offline r'))
    (List.rev !records);
  Obs.Analyze.finalize offline;
  Alcotest.(check bool) "records were collected" true (!records <> []);
  Alcotest.(check bool) "online and offline blocks bit-identical" true
    (Json.equal online (Obs.Analyze.to_json offline))

let test_manifest_no_analysis () =
  let spec = smoke_longlived ~name:"analysis/off" ~seed:9L in
  let o = Runner.run_one spec in
  (match o.Runner.result with
  | Outcome.Done _ -> ()
  | Outcome.Failed { error; _ } -> Alcotest.fail error);
  Alcotest.(check bool) "analysis field is None" true
    (o.Runner.manifest.Obs.Manifest.analysis = None);
  (* The serialized manifest must not even carry the key, so registry
     outputs stay byte-identical to pre-analysis builds. *)
  Alcotest.(check bool) "no analysis member in JSON" true
    (Json.member "analysis" (Obs.Manifest.to_json o.Runner.manifest) = None)

let suites =
  [
    ( "exp.spec",
      [
        qtest prop_json_roundtrip;
        Alcotest.test_case "extreme seeds survive JSON" `Quick
          test_extreme_seeds;
        Alcotest.test_case "of_json is strict" `Quick test_of_json_strict;
        Alcotest.test_case "buffer key omitted when Static" `Quick
          test_buffer_json_default;
      ] );
    ( "exp.registry",
      [
        Alcotest.test_case "catalogue integrity" `Quick
          test_registry_catalogue;
        Alcotest.test_case "baseline families stay Static" `Quick
          test_baseline_families_stay_static;
      ] );
    ( "exp.runner",
      [
        qtest prop_parallel_identity;
        Alcotest.test_case "failure isolation" `Quick test_failure_isolation;
        Alcotest.test_case "Static run = pre-buffer spec run" `Quick
          test_static_run_matches_prebuffer_spec;
        Alcotest.test_case "manifest reconstructs the spec" `Quick
          test_manifest_reconstruction;
        Alcotest.test_case "online analysis = offline replay" `Quick
          test_online_offline_analysis;
        Alcotest.test_case "analysis absent when disabled" `Quick
          test_manifest_no_analysis;
      ] );
  ]
