(* Tests for the discrete-event engine: time, heap, rng, simulator,
   the monomorphic event queue, ring buffers, and timers. *)

module Time = Engine.Time
module Heap = Engine.Heap
module Rng = Engine.Rng
module Sim = Engine.Sim
module Timer = Engine.Timer

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* --- Time --- *)

let test_time_conversions () =
  checkf "1s round trip" 1. (Time.to_sec (Time.of_sec 1.));
  checkf "1us" 1e-6 (Time.to_sec (Time.of_us 1.));
  checkf "1ms" 1e-3 (Time.to_sec (Time.of_ms 1.));
  check Alcotest.int64 "of_ns" 123L (Time.to_ns (Time.of_ns 123L));
  checkf "span 2.5ms" 2.5e-3 (Time.span_to_sec (Time.span_of_ms 2.5))

let test_time_rounding () =
  (* of_sec rounds to the nearest nanosecond. *)
  check Alcotest.int64 "round down" 1L (Time.to_ns (Time.of_sec 1.4e-9));
  check Alcotest.int64 "round up" 2L (Time.to_ns (Time.of_sec 1.6e-9))

let test_time_ordering () =
  let a = Time.of_us 1. and b = Time.of_us 2. in
  checkb "lt" true Time.(a < b);
  checkb "le" true Time.(a <= a);
  checkb "gt" true Time.(b > a);
  checkb "ge" true Time.(b >= b);
  checkb "eq" true (Time.equal a a);
  checkb "min" true (Time.equal (Time.min a b) a);
  checkb "max" true (Time.equal (Time.max a b) b)

let test_time_arith () =
  let t = Time.add (Time.of_us 5.) (Time.span_of_us 3.) in
  checkf "add" 8e-6 (Time.to_sec t);
  check Alcotest.int64 "diff" 3000L (Time.diff t (Time.of_us 5.))

let test_time_invalid () =
  Alcotest.check_raises "negative ns" (Invalid_argument "Time.of_ns: negative")
    (fun () -> ignore (Time.of_ns (-1L)));
  checkb "negative sec raises" true
    (match Time.of_sec (-1.) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "nan raises" true
    (match Time.of_sec Float.nan with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_time_pp () =
  check Alcotest.string "ns" "500ns" (Time.to_string (Time.of_ns 500L));
  check Alcotest.string "us" "1.500us" (Time.to_string (Time.of_ns 1500L));
  check Alcotest.string "ms" "2.000ms" (Time.to_string (Time.of_ms 2.));
  check Alcotest.string "s" "3.000000s" (Time.to_string (Time.of_sec 3.))

(* --- Heap --- *)

let int_heap () = Heap.create ~cmp:Int.compare ()

let test_heap_basic () =
  let h = int_heap () in
  checkb "empty" true (Heap.is_empty h);
  checki "len 0" 0 (Heap.length h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  checki "len 5" 5 (Heap.length h);
  checkb "peek" true (Heap.peek h = Some 1);
  checki "pop1" 1 (Heap.pop_exn h);
  checki "pop2" 1 (Heap.pop_exn h);
  checki "pop3" 3 (Heap.pop_exn h);
  checki "len 2" 2 (Heap.length h)

let test_heap_pop_empty () =
  let h = int_heap () in
  checkb "pop none" true (Heap.pop h = None);
  Alcotest.check_raises "pop_exn raises"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_sorted_drain () =
  let h = int_heap () in
  let data = [ 9; 2; 7; 2; 0; -3; 14; 8 ] in
  List.iter (Heap.push h) data;
  check
    Alcotest.(list int)
    "to_sorted_list" (List.sort Int.compare data) (Heap.to_sorted_list h);
  (* Non destructive *)
  checki "still full" (List.length data) (Heap.length h)

let test_heap_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  checkb "cleared" true (Heap.is_empty h)

let test_heap_iter () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 4; 2; 6 ];
  let sum = ref 0 in
  Heap.iter_unordered (fun x -> sum := !sum + x) h;
  checki "iter sum" 12 !sum

let prop_heap_sorts =
  QCheck.Test.make ~count:200 ~name:"heap drains any list in sorted order"
    QCheck.(list int)
    (fun l ->
      let h = int_heap () in
      List.iter (Heap.push h) l;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare l)

let prop_heap_interleaved =
  QCheck.Test.make ~count:200
    ~name:"heap min is correct under interleaved push/pop"
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = int_heap () in
      let model = ref [] in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            Heap.push h v;
            model := v :: !model;
            true
          end
          else begin
            match (Heap.pop h, List.sort Int.compare !model) with
            | None, [] -> true
            | Some x, m :: rest ->
                model := rest;
                x = m
            | None, _ :: _ | Some _, [] -> false
          end)
        ops)

(* --- Rng ---

   These tests create Rng streams directly: the stream type is the unit
   under test, so R10 (streams belong to owner layers) is suppressed on
   each creation line. *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7L and b = Rng.create ~seed:7L in  (* dtlint: allow R10 *)
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:7L and b = Rng.create ~seed:8L in  (* dtlint: allow R10 *)
  checkb "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_float_range () =
  let r = Rng.create ~seed:42L in  (* dtlint: allow R10 *)
  for _ = 1 to 1000 do
    let f = Rng.float r in
    checkb "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_int_range () =
  let r = Rng.create ~seed:42L in  (* dtlint: allow R10 *)
  for _ = 1 to 1000 do
    let i = Rng.int r ~bound:17 in
    checkb "in [0,17)" true (i >= 0 && i < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r ~bound:0))

let test_rng_uniform () =
  let r = Rng.create ~seed:1L in  (* dtlint: allow R10 *)
  for _ = 1 to 200 do
    let x = Rng.uniform r ~lo:3. ~hi:5. in
    checkb "uniform range" true (x >= 3. && x < 5.)
  done

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:11L in  (* dtlint: allow R10 *)
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:2.
  done;
  let mean = !sum /. float_of_int n in
  checkb "exponential mean within 5%" true (Float.abs (mean -. 2.) < 0.1)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:3L in  (* dtlint: allow R10 *)
  let c1 = Rng.split parent in  (* dtlint: allow R10 *)
  let c2 = Rng.split parent in  (* dtlint: allow R10 *)
  checkb "children differ" true (Rng.int64 c1 <> Rng.int64 c2)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:5L in  (* dtlint: allow R10 *)
  let arr = Array.init 50 Fun.id in
  let orig = Array.copy arr in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  checkb "is permutation" true (sorted = orig)

let test_rng_jitter_bounds () =
  let r = Rng.create ~seed:9L in  (* dtlint: allow R10 *)
  for _ = 1 to 500 do
    let j = Rng.jitter_span r ~max:1000L in
    checkb "jitter in range" true (Int64.compare j 0L >= 0 && Int64.compare j 1000L <= 0)
  done;
  check Alcotest.int64 "zero max" 0L (Rng.jitter_span r ~max:0L)

(* --- Sim --- *)

let test_sim_runs_in_order () =
  let sim = Sim.create () in
  let order = ref [] in
  ignore (Sim.schedule_at sim (Time.of_us 3.) (fun () -> order := 3 :: !order));
  ignore (Sim.schedule_at sim (Time.of_us 1.) (fun () -> order := 1 :: !order));
  ignore (Sim.schedule_at sim (Time.of_us 2.) (fun () -> order := 2 :: !order));
  Sim.run sim;
  check Alcotest.(list int) "time order" [ 1; 2; 3 ] (List.rev !order)

let test_sim_fifo_same_instant () =
  let sim = Sim.create () in
  let order = ref [] in
  let t = Time.of_us 1. in
  for i = 1 to 5 do
    ignore (Sim.schedule_at sim t (fun () -> order := i :: !order))
  done;
  Sim.run sim;
  check Alcotest.(list int) "FIFO at same time" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_sim_clock_advances () =
  let sim = Sim.create () in
  let seen = ref Time.zero in
  ignore (Sim.schedule_at sim (Time.of_us 7.) (fun () -> seen := Sim.now sim));
  Sim.run sim;
  checkf "now is event time" 7e-6 (Time.to_sec !seen)

let test_sim_schedule_after () =
  let sim = Sim.create () in
  let fired = ref Time.zero in
  ignore
    (Sim.schedule_at sim (Time.of_us 5.) (fun () ->
         ignore
           (Sim.schedule_after sim (Time.span_of_us 10.) (fun () ->
                fired := Sim.now sim))));
  Sim.run sim;
  checkf "after accumulates" 15e-6 (Time.to_sec !fired)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let ev = Sim.schedule_at sim (Time.of_us 1.) (fun () -> fired := true) in
  checki "pending 1" 1 (Sim.pending sim);
  Sim.cancel sim ev;
  checki "pending 0" 0 (Sim.pending sim);
  (* double cancel is a no-op *)
  Sim.cancel sim ev;
  checki "pending still 0" 0 (Sim.pending sim);
  Sim.run sim;
  checkb "not fired" false !fired;
  checki "nothing processed" 0 (Sim.events_processed sim)

let test_sim_lazy_compaction () =
  (* Cancel-heavy schedule: cancelled events must be reclaimed (the
     wheel unlinks them immediately) instead of carried until popped. *)
  let sim = Sim.create () in
  let n = 1000 in
  let fired = ref [] in
  let evs =
    Array.init n (fun i ->
        Sim.schedule_at sim
          (Time.of_us (float_of_int (i + 1)))
          (fun () -> fired := i :: !fired))
  in
  checki "full occupancy" n (Sim.heap_size sim);
  (* Cancel all but every 10th event, as a rearmed timer storm would. *)
  for i = 0 to n - 1 do
    if i mod 10 <> 0 then Sim.cancel sim evs.(i)
  done;
  checki "live survivors" (n / 10) (Sim.pending sim);
  checkb "swept below live + dead ceiling" true
    (Sim.heap_size sim <= 2 * Sim.pending sim);
  (* High water saw the initial burst, measured as peak live events. *)
  checki "high water is peak occupancy" n (Sim.heap_high_water sim);
  Sim.run sim;
  checki "survivors all fired" (n / 10) (List.length !fired);
  let expected = List.init (n / 10) (fun k -> n - 10 - (10 * k)) in
  checkb "survivors fired in time order" true (!fired = expected);
  checki "only survivors processed" (n / 10) (Sim.events_processed sim);
  checki "heap drained" 0 (Sim.heap_size sim)

(* PR 9 regression pin: on a run with no cancels the live-only high
   water must equal the occupancy-based value it replaced — the
   manifest's [engine.heap_high_water] field stays comparable across
   the change for every existing registry scenario (none of which
   leaves cancelled events unswept at their peak). *)
let test_sim_hwm_no_cancel_regression () =
  let sim = Sim.create () in
  for i = 1 to 37 do
    ignore (Sim.schedule_at sim (Time.of_us (float_of_int i)) (fun () -> ()))
  done;
  checki "high water equals the pre-change peak" 37 (Sim.heap_high_water sim);
  Sim.run sim;
  checki "draining does not move it" 37 (Sim.heap_high_water sim)

(* The satellite fix itself: unswept corpses (held only by the backstop
   heaps, which sweep lazily) must no longer inflate the high water.
   Before the fix this run would report 15 — 9 far-future corpses plus
   6 live — instead of the true live peak of 10. *)
let test_sim_hwm_counts_live_only () =
  let sim = Sim.create () in
  let far i = Time.of_sec (2.0 +. (0.001 *. float_of_int i)) in
  let ids =
    Array.init 10 (fun i -> Sim.schedule_at sim (far i) (fun () -> ()))
  in
  Array.iteri (fun i id -> if i > 0 then Sim.cancel sim id) ids;
  checkb "corpses really are held" true
    (Sim.heap_size sim > Sim.pending sim);
  for i = 0 to 4 do
    ignore
      (Sim.schedule_at sim (Time.of_us (float_of_int (20 + i))) (fun () -> ()))
  done;
  checki "high water counts live events only" 10 (Sim.heap_high_water sim)

let test_sim_run_until_no_overshoot () =
  (* A not-yet-swept cancelled root must not let [run ~until] overshoot:
     its key is inside the deadline, but the event [step] would actually
     fire lies past it and must stay queued. *)
  let sim = Sim.create () in
  let fired = ref false in
  let dead = Sim.schedule_at sim (Time.of_us 5.) ignore in
  ignore (Sim.schedule_at sim (Time.of_us 10.) (fun () -> fired := true));
  Sim.cancel sim dead;
  Sim.run ~until:(Time.of_us 7.) sim;
  checkb "live event past the deadline did not fire" false !fired;
  checkf "clock rests at the deadline" 7e-6 (Time.to_sec (Sim.now sim));
  Sim.run ~until:(Time.of_us 20.) sim;
  checkb "fires once the deadline covers it" true !fired

let test_sim_past_raises () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim (Time.of_us 5.) (fun () -> ()));
  Sim.run sim;
  checkb "past raises" true
    (match Sim.schedule_at sim (Time.of_us 1.) (fun () -> ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_sim_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore
      (Sim.schedule_at sim (Time.of_us (float_of_int i)) (fun () -> incr count))
  done;
  Sim.run ~until:(Time.of_us 5.) sim;
  checki "half processed" 5 !count;
  checkf "clock at until" 5e-6 (Time.to_sec (Sim.now sim));
  checki "half pending" 5 (Sim.pending sim);
  Sim.run sim;
  checki "rest processed" 10 !count

let test_sim_until_inclusive () =
  let sim = Sim.create () in
  let fired = ref false in
  ignore (Sim.schedule_at sim (Time.of_us 5.) (fun () -> fired := true));
  Sim.run ~until:(Time.of_us 5.) sim;
  checkb "event at boundary fires" true !fired

let test_sim_until_advances_clock_when_idle () =
  let sim = Sim.create () in
  Sim.run ~until:(Time.of_ms 1.) sim;
  checkf "clock moved" 1e-3 (Time.to_sec (Sim.now sim))

let test_sim_step () =
  let sim = Sim.create () in
  checkb "step on empty" false (Sim.step sim);
  ignore (Sim.schedule_at sim (Time.of_us 1.) (fun () -> ()));
  checkb "step runs" true (Sim.step sim);
  checkb "empty again" false (Sim.step sim)

let test_sim_events_processed () =
  let sim = Sim.create () in
  for i = 1 to 7 do
    ignore (Sim.schedule_at sim (Time.of_us (float_of_int i)) (fun () -> ()))
  done;
  Sim.run sim;
  checki "events" 7 (Sim.events_processed sim)

(* --- Timer --- *)

let test_timer_fires () =
  let sim = Sim.create () in
  let fired = ref Time.zero in
  let t = Timer.create sim ~action:(fun () -> fired := Sim.now sim) in
  Timer.set t ~after:(Time.span_of_us 50.);
  checkb "pending" true (Timer.is_pending t);
  Sim.run sim;
  checkf "fired at deadline" 50e-6 (Time.to_sec !fired);
  checkb "idle after" false (Timer.is_pending t)

let test_timer_rearm_replaces () =
  let sim = Sim.create () in
  let count = ref 0 in
  let t = Timer.create sim ~action:(fun () -> incr count) in
  Timer.set t ~after:(Time.span_of_us 10.);
  Timer.set t ~after:(Time.span_of_us 20.);
  Sim.run sim;
  checki "fires once" 1 !count;
  checkf "clock at second deadline" 20e-6 (Time.to_sec (Sim.now sim))

let test_timer_cancel () =
  let sim = Sim.create () in
  let count = ref 0 in
  let t = Timer.create sim ~action:(fun () -> incr count) in
  Timer.set t ~after:(Time.span_of_us 10.);
  Timer.cancel t;
  checkb "idle" false (Timer.is_pending t);
  Sim.run sim;
  checki "never fires" 0 !count

let test_timer_deadline () =
  let sim = Sim.create () in
  let t = Timer.create sim ~action:(fun () -> ()) in
  checkb "no deadline" true (Timer.deadline t = None);
  Timer.set_at t ~at:(Time.of_us 42.);
  (match Timer.deadline t with
  | Some d -> checkf "deadline" 42e-6 (Time.to_sec d)
  | None -> Alcotest.fail "expected deadline");
  Timer.cancel t

let test_timer_periodic_reuse () =
  let sim = Sim.create () in
  let count = ref 0 in
  let tmr = ref None in
  let action () =
    incr count;
    if !count < 5 then
      match !tmr with
      | Some t -> Timer.set t ~after:(Time.span_of_us 10.)
      | None -> ()
  in
  let t = Timer.create sim ~action in
  tmr := Some t;
  Timer.set t ~after:(Time.span_of_us 10.);
  Sim.run sim;
  checki "five firings" 5 !count;
  checkf "50us elapsed" 50e-6 (Time.to_sec (Sim.now sim))

let prop_sim_fires_in_time_order =
  QCheck.Test.make ~count:200 ~name:"events fire in non-decreasing time order"
    QCheck.(list_of_size Gen.(int_range 0 60) (int_bound 100_000))
    (fun delays_us ->
      let sim = Sim.create () in
      let fired = ref [] in
      List.iter
        (fun us ->
          ignore
            (Sim.schedule_at sim
               (Time.of_us (float_of_int us))
               (fun () -> fired := Time.to_ns (Sim.now sim) :: !fired)))
        delays_us;
      Sim.run sim;
      let order = List.rev !fired in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) ->
            Int64.compare a b <= 0 && non_decreasing rest
        | [] | [ _ ] -> true
      in
      List.length order = List.length delays_us && non_decreasing order)

(* --- Event_queue --- *)

module Eq = Engine.Event_queue

(* Drive the monomorphic queue and a naive model (hashtable of live
   events, min found by scan) through the same trace and demand the
   same observable behaviour: pop order, popped times, cancel results.
   The model keys events by schedule order, which is exactly the
   queue's [seq] tie-break, so the expected order is total. *)
let run_event_queue_trace ops =
  let q = Eq.create ~capacity:4 () in
  let ids = ref [] (* (tag, id), newest first *) in
  let n_issued = ref 0 in
  let model = Hashtbl.create 64 (* tag -> key_ns, live events only *) in
  let fired = ref (-1) in
  let ok = ref true in
  let model_min () =
    Hashtbl.fold
      (fun tag key acc ->
        match acc with
        | Some (k, tg) when k < key || (k = key && tg < tag) -> acc
        | _ -> Some (key, tag))
      model None
  in
  let do_pop () =
    match (Eq.pop q, model_min ()) with
    | false, None -> ()
    | true, Some (key, tag) ->
        fired := -1;
        (Eq.popped_action q) ();
        if !fired <> tag then ok := false;
        if Int64.to_int (Time.to_ns (Eq.popped_time q)) <> key then
          ok := false;
        Hashtbl.remove model tag
    | true, None | false, Some _ -> ok := false
  in
  List.iter
    (fun (kind, v) ->
      match kind with
      | 0 ->
          let tag = !n_issued in
          incr n_issued;
          let id =
            Eq.add q ~time:(Time.of_ns (Int64.of_int v)) (fun () ->
                fired := tag)
          in
          ids := (tag, id) :: !ids;
          Hashtbl.replace model tag v
      | 1 -> (
          match !ids with
          | [] -> ()
          | l ->
              let tag, id = List.nth l (v mod List.length l) in
              let was_live = Hashtbl.mem model tag in
              let cancelled = Eq.cancel q id in
              if cancelled <> was_live then ok := false;
              if cancelled then Hashtbl.remove model tag)
      | _ -> do_pop ())
    ops;
  (* Drain whatever is left; the guard keeps a broken queue from
     spinning instead of failing. *)
  let guard = ref (List.length ops + 1) in
  while !ok && (Eq.live q > 0 || Hashtbl.length model > 0) && !guard > 0 do
    decr guard;
    do_pop ()
  done;
  !ok && Eq.live q = 0 && Hashtbl.length model = 0

let prop_event_queue_matches_model =
  QCheck.Test.make ~count:300
    ~name:"Event_queue matches a naive model on schedule/cancel/pop traces"
    QCheck.(
      list_of_size
        Gen.(int_range 0 200)
        (pair (int_bound 2) (int_bound 1_000)))
    run_event_queue_trace

(* Cancel-heavy traces: bias the op mix so live events accumulate past
   the compaction threshold (64) and cancels then outnumber the
   survivors, exercising the cancel-then-compact interleavings. *)
let prop_event_queue_cancel_heavy =
  QCheck.Test.make ~count:100
    ~name:"Event_queue survives cancel-then-compact interleavings"
    QCheck.(
      list_of_size
        Gen.(int_range 100 400)
        (pair (int_bound 8) (int_bound 1_000)))
    (fun raw ->
      (* kinds 0-4 schedule, 5-7 cancel, 8 pops: schedules outnumber
         cancels early (occupancy crosses 64), cancels hit a deep heap. *)
      let ops =
        List.map
          (fun (k, v) -> ((if k <= 4 then 0 else if k <= 7 then 1 else 2), v))
          raw
      in
      run_event_queue_trace ops)

(* Mixed-magnitude keys: [v lsl (5 s)] places events across every wheel
   level and (for s = 6) beyond the 2^30 ns horizon, so the same model
   equivalence also covers cascade boundaries, the overdue heap after
   large pops, and overflow drains — the paths small-key traces miss. *)
let prop_event_queue_large_keys =
  QCheck.Test.make ~count:200
    ~name:"Event_queue matches the model across wheel levels and overflow"
    QCheck.(
      map
        (List.map (fun (k, (s, v)) -> (k, (v lsl (5 * s)) + v)))
        (list_of_size
           Gen.(int_range 0 120)
           (pair (int_bound 2) (pair (int_bound 6) (int_bound 2_000)))))
    run_event_queue_trace

(* Same game against the generic [Heap] the simulator used before: the
   reference orders (key, seq) pairs with a comparison closure and
   models cancellation as a skip-set consulted at pop, which is exactly
   the old engine's scheme. *)
let prop_event_queue_matches_heap =
  QCheck.Test.make ~count:200
    ~name:"Event_queue pop order equals the generic reference Heap's"
    QCheck.(
      list_of_size
        Gen.(int_range 0 150)
        (pair (int_bound 2) (int_bound 500)))
    (fun ops ->
      let q = Eq.create ~capacity:4 () in
      let cmp (k1, s1) (k2, s2) =
        if k1 <> k2 then Int.compare k1 k2 else Int.compare s1 s2
      in
      let h = Heap.create ~capacity:4 ~cmp () in
      let cancelled = Hashtbl.create 16 in
      let ids = ref [] in
      let n = ref 0 in
      let fired = ref (-1) in
      let ok = ref true in
      let rec heap_pop () =
        match Heap.pop h with
        | Some (_, s) when Hashtbl.mem cancelled s -> heap_pop ()
        | other -> other
      in
      let do_pop () =
        match (Eq.pop q, heap_pop ()) with
        | false, None -> ()
        | true, Some (k, s) ->
            fired := -1;
            (Eq.popped_action q) ();
            if !fired <> s then ok := false;
            if Int64.to_int (Time.to_ns (Eq.popped_time q)) <> k then
              ok := false
        | true, None | false, Some _ -> ok := false
      in
      List.iter
        (fun (kind, v) ->
          match kind with
          | 0 ->
              let s = !n in
              incr n;
              let id =
                Eq.add q ~time:(Time.of_ns (Int64.of_int v)) (fun () ->
                    fired := s)
              in
              Heap.push h (v, s);
              ids := (s, id) :: !ids
          | 1 -> (
              match !ids with
              | [] -> ()
              | l ->
                  let s, id = List.nth l (v mod List.length l) in
                  if Eq.cancel q id then Hashtbl.replace cancelled s ())
          | _ -> do_pop ())
        ops;
      let guard = ref (List.length ops + 1) in
      while !ok && Eq.live q > 0 && !guard > 0 do
        decr guard;
        do_pop ()
      done;
      !ok && Eq.live q = 0 && heap_pop () = None)

let test_event_queue_compaction_sweep () =
  let q = Eq.create ~capacity:4 () in
  let fired = ref [] in
  let ids =
    List.init 200 (fun i ->
        Eq.add q ~time:(Time.of_ns (Int64.of_int i)) (fun () ->
            fired := i :: !fired))
  in
  (* Cancel 150 of 200: every one is wheel-resident, so each cancel
     unlinks and recycles its slot on the spot — no corpses at all. *)
  List.iteri (fun i id -> if i mod 4 <> 0 then ignore (Eq.cancel q id)) ids;
  checki "live survivors" 50 (Eq.live q);
  checki "wheel cancels reclaimed immediately" 50 (Eq.length q);
  while Eq.pop q do
    (Eq.popped_action q) ()
  done;
  let order = List.rev !fired in
  checki "all survivors fired" 50 (List.length order);
  checkb "in schedule order" true (order = List.sort Int.compare order)

let test_event_queue_stale_cancel () =
  let q = Eq.create () in
  let id = Eq.add q ~time:(Time.of_ns 5L) ignore in
  checkb "pop fires it" true (Eq.pop q);
  (* The record is back in the pool; the old id must now be inert. *)
  checkb "stale id rejected" false (Eq.cancel q id);
  let id2 = Eq.add q ~time:(Time.of_ns 7L) ignore in
  checkb "slot reuse keeps new id valid" true (Eq.cancel q id2)

(* Wheel-resident cancels must free their pool slots on the spot:
   scheduling into the freed slots may not grow the pool, and the queue
   must stay fully usable after draining to empty. *)
let test_event_queue_wheel_cancel_reclaims () =
  let q = Eq.create () in
  let ids =
    Array.init 200 (fun i ->
        Eq.add q ~time:(Time.of_ns (Int64.of_int (i * 3))) ignore)
  in
  let pool0 = Eq.pool_size q in
  Array.iteri (fun i id -> if i mod 4 <> 0 then ignore (Eq.cancel q id)) ids;
  checki "live survivors" 50 (Eq.live q);
  checki "no corpses held" 50 (Eq.length q);
  for i = 0 to 149 do
    ignore (Eq.add q ~time:(Time.of_ns (Int64.of_int (1000 + i))) ignore)
  done;
  checki "freed slots reused, pool not grown" pool0 (Eq.pool_size q);
  while Eq.pop q do
    ()
  done;
  checki "drained" 0 (Eq.live q);
  ignore (Eq.add q ~time:(Time.of_ns 5000L) ignore);
  checkb "still pops after draining to empty" true (Eq.pop q)

(* Far-future events (beyond the 2^30 ns wheel horizon) park in the
   overflow backstop heap, where cancels are lazy: corpses linger until
   they exceed half the heap (at >= 64 entries), then one O(n) sweep
   reclaims them all. *)
let test_event_queue_overflow_lazy_sweep () =
  let q = Eq.create ~capacity:4 () in
  let far i = Time.of_ns (Int64.of_int ((2 lsl 30) + (i * 7))) in
  let fired = ref [] in
  let ids =
    Array.init 100 (fun i ->
        Eq.add q ~time:(far i) (fun () -> fired := i :: !fired))
  in
  checki "all parked in overflow" 100 (Eq.overflow_len q);
  for i = 0 to 39 do
    ignore (Eq.cancel q ids.(i))
  done;
  checki "live" 60 (Eq.live q);
  checki "corpses linger below the sweep threshold" 100 (Eq.overflow_len q);
  checki "length counts unswept dead" 100 (Eq.length q);
  (* The 51st corpse tips dead past half the heap: swept to survivors. *)
  for i = 40 to 50 do
    ignore (Eq.cancel q ids.(i))
  done;
  checki "sweep reclaimed the corpses" 49 (Eq.overflow_len q);
  checki "length after sweep" 49 (Eq.length q);
  while Eq.pop q do
    (Eq.popped_action q) ()
  done;
  checki "overflow drained through the wheel" 0 (Eq.overflow_len q);
  let expected = List.init 49 (fun k -> 51 + k) in
  Alcotest.(check (list int))
    "survivors fired in schedule order" expected (List.rev !fired)

(* Events dated at or before an instant the wheel already passed land in
   the overdue backstop ({!Sim} never produces them, but the queue must
   keep the (key, seq) total order under arbitrary call sequences). *)
let test_event_queue_overdue_backstop () =
  let q = Eq.create () in
  ignore (Eq.add q ~time:(Time.of_ns 1000L) ignore);
  checkb "advance the wheel to t=1000" true (Eq.pop q);
  let fired = ref [] in
  let add ns tag =
    ignore
      (Eq.add q ~time:(Time.of_ns ns) (fun () -> fired := tag :: !fired))
  in
  add 5L 0;
  add 1500L 1;
  add 5L 2;
  add 999L 3;
  checki "past-dated events sit in the overdue heap" 3 (Eq.overdue_len q);
  while Eq.pop q do
    (Eq.popped_action q) ()
  done;
  Alcotest.(check (list int))
    "fired in (key, seq) order across both structures" [ 0; 2; 3; 1 ]
    (List.rev !fired);
  checki "overdue drained" 0 (Eq.overdue_len q)

(* Keys straddling every wheel-level boundary (2^5 .. 2^25), the
   overflow horizon (2^30), and a same-instant group parked five levels
   up: everything must fire in (key, seq) order, which means the cascade
   path re-files events correctly at each level crossing and restores
   schedule order within an instant. *)
let test_event_queue_cascade_boundaries () =
  let q = Eq.create () in
  let fired = ref [] in
  let add ns tag =
    ignore
      (Eq.add q
         ~time:(Time.of_ns (Int64.of_int ns))
         (fun () -> fired := tag :: !fired))
  in
  let keys =
    [
      31; 32; 33; 1023; 1024; 32767; 32768;
      (1 lsl 20) - 1; 1 lsl 20; (1 lsl 25) + 7;
      (1 lsl 30) - 1; 1 lsl 30; (1 lsl 30) + 1;
    ]
  in
  List.iteri (fun i k -> add k (100 + i)) keys;
  add (1 lsl 25) 0;
  add (1 lsl 25) 1;
  add (1 lsl 25) 2;
  checki "beyond-horizon keys overflowed" 2 (Eq.overflow_len q);
  while Eq.pop q do
    (Eq.popped_action q) ()
  done;
  Alcotest.(check (list int))
    "(key, seq) order across every level boundary"
    [ 100; 101; 102; 103; 104; 105; 106; 107; 108; 0; 1; 2; 109; 110; 111; 112 ]
    (List.rev !fired)

(* The schedule/pop fast path — pre-boxed times, wheel-resident keys —
   must allocate nothing at all: adds are a level computation plus a
   list append, pops a bitmask scan plus an unlink, and the pool
   recycles every record. 64k events through a warm queue must cost
   zero minor words (the budget below tolerates only the measurement's
   own boxed-float readings). *)
let test_event_queue_zero_alloc_fast_path () =
  let q = Eq.create () in
  let n = 1 lsl 16 in
  let times =
    Array.init n (fun i -> Time.of_ns (Int64.of_int ((i + 1) * 150)))
  in
  (* Warm the pool past the working set. *)
  for i = 0 to 63 do
    ignore (Eq.add q ~time:times.(i) ignore)
  done;
  while Eq.pop q do
    ()
  done;
  let before = Gc.minor_words () in
  let i = ref 64 in
  while !i + 64 <= n do
    for k = !i to !i + 63 do
      ignore (Eq.add q ~time:times.(k) ignore)
    done;
    for _ = 1 to 64 do
      ignore (Eq.pop q)
    done;
    i := !i + 64
  done;
  let delta = Gc.minor_words () -. before in
  checkb
    (Printf.sprintf "fast path allocated %.0f words for %d events" delta n)
    true (delta < 64.)

(* Steady-state schedule->pop churn through the pool must not allocate
   per event beyond the boxed Time.t that [schedule_after] builds. The
   budget (8 words/event) is far below what an event record or closure
   per event would cost, so a pooling regression trips it. *)
let test_event_queue_alloc_regression () =
  let sim = Sim.create () in
  let left = ref 0 in
  let rec act () =
    decr left;
    if !left > 0 then ignore (Sim.schedule_after sim (Time.span_of_us 1.) act)
  in
  let churn n =
    left := n;
    ignore (Sim.schedule_after sim (Time.span_of_us 1.) act);
    Sim.run sim
  in
  churn 1_000 (* warm the pool and heap *);
  let pool0 = Sim.event_pool_size sim in
  let before = Gc.minor_words () in
  let n = 20_000 in
  churn n;
  let per_event = (Gc.minor_words () -. before) /. float_of_int n in
  checkb
    (Printf.sprintf "%.1f words/event within budget" per_event)
    true
    (per_event <= 8.);
  checki "pool is steady under churn" pool0 (Sim.event_pool_size sim)

(* --- event classes and the profiler hooks --- *)

let test_event_queue_cls () =
  let q = Eq.create () in
  ignore (Eq.add_cls q ~time:(Time.of_ns 10L) ~cls:3 ignore);
  ignore (Eq.add q ~time:(Time.of_ns 20L) ignore);
  ignore (Eq.add_cls q ~time:(Time.of_ns 30L) ~cls:5 ignore);
  checkb "pop 1" true (Eq.pop q);
  checki "tagged class comes back" 3 (Eq.popped_cls q);
  checkb "pop 2" true (Eq.pop q);
  checki "plain add defaults to class 0" 0 (Eq.popped_cls q);
  checkb "pop 3" true (Eq.pop q);
  checki "pooled slot re-tagged, not recycled" 5 (Eq.popped_cls q)

let test_event_class_table () =
  let module C = Engine.Event_class in
  checki "count matches all" C.count (Array.length C.all);
  Array.iter
    (fun c ->
      checkb
        ("index/of_index roundtrip: " ^ C.name c)
        true
        (C.of_index (C.index c) = c))
    C.all;
  checki "Other is the default slot" 0 (C.index C.Other);
  checkb "out-of-range index rejected" true
    (match C.of_index C.count with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_sim_profiler_hooks () =
  let sim = Sim.create () in
  let seen_before = ref [] and seen_after = ref [] in
  checkb "profiling off by default" false (Sim.profiling sim);
  Sim.set_profiler sim
    ~before:(fun c -> seen_before := c :: !seen_before)
    ~after:(fun c -> seen_after := c :: !seen_after);
  checkb "profiling on after set" true (Sim.profiling sim);
  ignore (Sim.schedule_at_cls sim (Time.of_ns 1L) ~cls:2 (fun () -> ()));
  ignore (Sim.schedule_after_cls sim 2L ~cls:4 (fun () -> ()));
  ignore (Sim.schedule_at sim (Time.of_ns 3L) (fun () -> ()));
  Sim.run sim;
  Alcotest.(check (list int)) "before saw each class in order" [ 2; 4; 0 ]
    (List.rev !seen_before);
  Alcotest.(check (list int)) "after mirrors before" [ 2; 4; 0 ]
    (List.rev !seen_after);
  Sim.clear_profiler sim;
  checkb "profiling off after clear" false (Sim.profiling sim);
  ignore (Sim.schedule_at sim (Time.of_ns 10L) (fun () -> ()));
  Sim.run sim;
  checki "cleared hooks are silent" 3 (List.length !seen_before)

(* With no profiler attached the dispatch loop's extra cost is one
   predicted-false branch: the same churn that pins the pooled queue's
   allocation budget must stay within it after a set/clear cycle. *)
let test_profiler_disabled_alloc () =
  let sim = Sim.create () in
  Sim.set_profiler sim ~before:(fun _ -> ()) ~after:(fun _ -> ());
  Sim.clear_profiler sim;
  let left = ref 0 in
  let rec act () =
    decr left;
    if !left > 0 then ignore (Sim.schedule_after sim (Time.span_of_us 1.) act)
  in
  let churn n =
    left := n;
    ignore (Sim.schedule_after sim (Time.span_of_us 1.) act);
    Sim.run sim
  in
  churn 1_000;
  let before = Gc.minor_words () in
  let n = 20_000 in
  churn n;
  let per_event = (Gc.minor_words () -. before) /. float_of_int n in
  checkb
    (Printf.sprintf "%.1f words/event with profiler cleared" per_event)
    true
    (per_event <= 8.)

let test_heap_drain_releases_elements () =
  (* After growth and a full drain the heap must not pin the popped
     elements: ~2 MB of strings passed through, so a reachable size in
     the hundreds of words proves every slot was cleared. *)
  let h = Heap.create ~capacity:4 ~cmp:String.compare () in
  for i = 0 to 511 do
    Heap.push h (String.make 4096 (Char.chr (i land 0xff)))
  done;
  while Heap.pop h <> None do
    ()
  done;
  let words = Obj.reachable_words (Obj.repr h) in
  checkb
    (Printf.sprintf "drained heap retains %d words" words)
    true (words < 4_096)

(* --- Ring --- *)

module Ring = Engine.Ring

let test_ring_fifo_basics () =
  let r = Ring.create ~capacity:2 () in
  checkb "fresh ring empty" true (Ring.is_empty r);
  for i = 1 to 5 do
    Ring.push r i
  done;
  checki "length" 5 (Ring.length r);
  checkb "peek" true (Ring.peek_opt r = Some 1);
  checki "pop front" 1 (Ring.pop r);
  checki "then next" 2 (Ring.pop r);
  checki "length after pops" 3 (Ring.length r)

let test_ring_pop_empty_raises () =
  let r : int Ring.t = Ring.create () in
  checkb "pop_opt on empty" true (Ring.pop_opt r = None);
  Alcotest.check_raises "pop on empty" Not_found (fun () ->
      ignore (Ring.pop r))

let test_ring_wraparound_growth () =
  (* Pop a few from the front, refill past the old back: the write
     index wraps before the buffer grows, so growth must linearise the
     wrapped contents. *)
  let r = Ring.create ~capacity:4 () in
  for i = 0 to 3 do
    Ring.push r i
  done;
  checki "pop 0" 0 (Ring.pop r);
  checki "pop 1" 1 (Ring.pop r);
  for i = 4 to 9 do
    Ring.push r i
  done;
  let seen = ref [] in
  Ring.iter (fun x -> seen := x :: !seen) r;
  Alcotest.(check (list int))
    "iter front-to-back across the wrap" [ 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !seen);
  let out = ref [] in
  while not (Ring.is_empty r) do
    out := Ring.pop r :: !out
  done;
  Alcotest.(check (list int))
    "drain order" [ 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !out)

let test_ring_clear () =
  let r = Ring.create ~capacity:2 () in
  for i = 0 to 9 do
    Ring.push r i
  done;
  Ring.clear r;
  checkb "cleared" true (Ring.is_empty r);
  Ring.push r 42;
  checki "usable after clear" 42 (Ring.pop r)

let prop_ring_matches_queue =
  QCheck.Test.make ~count:300 ~name:"Ring behaves like Stdlib.Queue"
    QCheck.(
      list_of_size Gen.(int_range 0 200) (pair bool (int_bound 1_000)))
    (fun ops ->
      let r = Ring.create ~capacity:1 () in
      let q = Queue.create () in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            Ring.push r v;
            Queue.add v q;
            true
          end
          else
            match (Ring.pop_opt r, Queue.take_opt q) with
            | None, None -> true
            | Some a, Some b -> a = b
            | _ -> false)
        ops
      && Ring.length r = Queue.length q
      && Ring.peek_opt r = Queue.peek_opt q)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "engine.time",
      [
        Alcotest.test_case "conversions" `Quick test_time_conversions;
        Alcotest.test_case "rounding" `Quick test_time_rounding;
        Alcotest.test_case "ordering" `Quick test_time_ordering;
        Alcotest.test_case "arithmetic" `Quick test_time_arith;
        Alcotest.test_case "invalid inputs" `Quick test_time_invalid;
        Alcotest.test_case "pretty printing" `Quick test_time_pp;
      ] );
    ( "engine.heap",
      [
        Alcotest.test_case "push/pop basics" `Quick test_heap_basic;
        Alcotest.test_case "pop empty" `Quick test_heap_pop_empty;
        Alcotest.test_case "sorted drain" `Quick test_heap_sorted_drain;
        Alcotest.test_case "clear" `Quick test_heap_clear;
        Alcotest.test_case "iter_unordered" `Quick test_heap_iter;
        qtest prop_heap_sorts;
        qtest prop_heap_interleaved;
      ] );
    ( "engine.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "int range" `Quick test_rng_int_range;
        Alcotest.test_case "uniform range" `Quick test_rng_uniform;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "jitter bounds" `Quick test_rng_jitter_bounds;
      ] );
    ( "engine.sim",
      [
        Alcotest.test_case "time order" `Quick test_sim_runs_in_order;
        Alcotest.test_case "FIFO at same instant" `Quick test_sim_fifo_same_instant;
        Alcotest.test_case "clock advances" `Quick test_sim_clock_advances;
        Alcotest.test_case "schedule_after" `Quick test_sim_schedule_after;
        Alcotest.test_case "cancel" `Quick test_sim_cancel;
        Alcotest.test_case "lazy compaction" `Quick test_sim_lazy_compaction;
        Alcotest.test_case "high water pinned on a no-cancel run" `Quick
          test_sim_hwm_no_cancel_regression;
        Alcotest.test_case "high water counts live only" `Quick
          test_sim_hwm_counts_live_only;
        Alcotest.test_case "scheduling in the past" `Quick test_sim_past_raises;
        Alcotest.test_case "run until" `Quick test_sim_run_until;
        Alcotest.test_case "until inclusive" `Quick test_sim_until_inclusive;
        Alcotest.test_case "until advances idle clock" `Quick
          test_sim_until_advances_clock_when_idle;
        Alcotest.test_case "until does not overshoot past a dead root" `Quick
          test_sim_run_until_no_overshoot;
        Alcotest.test_case "step" `Quick test_sim_step;
        Alcotest.test_case "events processed" `Quick test_sim_events_processed;
        Alcotest.test_case "profiler hooks" `Quick test_sim_profiler_hooks;
        Alcotest.test_case "profiler disabled allocation" `Quick
          test_profiler_disabled_alloc;
        qtest prop_sim_fires_in_time_order;
      ] );
    ( "engine.event_queue",
      [
        Alcotest.test_case "cancel-heavy reclaim" `Quick
          test_event_queue_compaction_sweep;
        Alcotest.test_case "stale cancel rejected" `Quick
          test_event_queue_stale_cancel;
        Alcotest.test_case "wheel cancel reclaims slots" `Quick
          test_event_queue_wheel_cancel_reclaims;
        Alcotest.test_case "overflow lazy sweep" `Quick
          test_event_queue_overflow_lazy_sweep;
        Alcotest.test_case "overdue backstop ordering" `Quick
          test_event_queue_overdue_backstop;
        Alcotest.test_case "cascade boundaries" `Quick
          test_event_queue_cascade_boundaries;
        Alcotest.test_case "zero-alloc fast path" `Quick
          test_event_queue_zero_alloc_fast_path;
        Alcotest.test_case "allocation regression" `Quick
          test_event_queue_alloc_regression;
        Alcotest.test_case "event class tags" `Quick test_event_queue_cls;
        Alcotest.test_case "event class table" `Quick test_event_class_table;
        Alcotest.test_case "heap drain releases elements" `Quick
          test_heap_drain_releases_elements;
        qtest prop_event_queue_matches_model;
        qtest prop_event_queue_large_keys;
        qtest prop_event_queue_matches_heap;
        qtest prop_event_queue_cancel_heavy;
      ] );
    ( "engine.ring",
      [
        Alcotest.test_case "FIFO basics" `Quick test_ring_fifo_basics;
        Alcotest.test_case "pop on empty" `Quick test_ring_pop_empty_raises;
        Alcotest.test_case "wraparound and growth" `Quick
          test_ring_wraparound_growth;
        Alcotest.test_case "clear" `Quick test_ring_clear;
        qtest prop_ring_matches_queue;
      ] );
    ( "engine.timer",
      [
        Alcotest.test_case "fires at deadline" `Quick test_timer_fires;
        Alcotest.test_case "re-arm replaces" `Quick test_timer_rearm_replaces;
        Alcotest.test_case "cancel" `Quick test_timer_cancel;
        Alcotest.test_case "deadline introspection" `Quick test_timer_deadline;
        Alcotest.test_case "periodic reuse" `Quick test_timer_periodic_reuse;
      ] );
  ]
