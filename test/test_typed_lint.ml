(* Tests for the typed whole-program lint pass (lint/typed_rules.ml).

   Fixture programs are written into a temp directory shaped like the
   real tree (lib/net/..., vendor/...), compiled with ocamlc -bin-annot
   from that directory (so the recorded source paths are build-relative,
   exactly like dune's), loaded through Cmt_loader and linted. Each rule
   gets a violating, a clean, and a suppressed fixture; R11 additionally
   carries the delta proof that the syntactic pass misses a laundered
   Random.int, and a qcheck property pins the reports (chains included)
   under module reordering. *)

module R = Dtlint.Rules
module TR = Dtlint.Typed_rules
module CL = Dtlint.Cmt_loader

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- fixture harness --------------------------------------------------- *)

let mkdtemp () =
  let f = Filename.temp_file "dtlint_fixture" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let write root rel content =
  let rec mkdirs d =
    if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  let path = Filename.concat root rel in
  mkdirs (Filename.dirname path);
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc content)

(* Compile fixtures in dependency order, cwd = fixture root, so each
   .cmt's cmt_sourcefile is the relative path we passed — the same shape
   dune records. *)
let compile root rels =
  let incs = List.sort_uniq String.compare (List.map Filename.dirname rels) in
  let inc_flags =
    String.concat " " (List.map (fun d -> "-I " ^ Filename.quote d) incs)
  in
  List.iter
    (fun rel ->
      let cmd =
        Printf.sprintf "cd %s && ocamlc -bin-annot -w -a %s -c %s"
          (Filename.quote root) inc_flags (Filename.quote rel)
      in
      if Sys.command cmd <> 0 then
        Alcotest.failf "fixture failed to compile: %s" rel)
    rels

let reader root file =
  let p = Filename.concat root file in
  match In_channel.with_open_text p In_channel.input_all with
  | s -> Some s
  | exception Sys_error _ -> None

let lint_root ?rules root =
  TR.lint_units ?rules ~read_source:(reader root) (CL.load_tree ~roots:[ root ])

let render (v : R.violation) =
  Printf.sprintf "%s %s:%d" (R.rule_id v.rule) v.file v.line

let check_renders msg expected violations =
  Alcotest.(check (list string)) msg expected (List.map render violations)

(* --- R11: transitive nondeterminism taint ------------------------------ *)

(* The laundering scenario R1 cannot see: the Random.int sits in
   vendor/util.ml, outside the protected tree; lib/net only ever calls
   the innocent-looking wrapper. sched2.ml checks entry-point-only
   reporting (its taint arrives via the already-reported mid.ml, so it
   must stay silent), sched_ok.ml checks suppression, clean.ml checks a
   pure module stays pure. *)
let sched_src = "let choose n = Util.pick n\n"

let s11 =
  lazy
    (let root = mkdtemp () in
     write root "vendor/util.ml" "let pick n = Random.int n\n";
     write root "lib/net/mid.ml" "let via n = Util.pick n\n";
     write root "lib/net/sched.ml" sched_src;
     write root "lib/net/sched2.ml" "let pick2 n = Mid.via n\n";
     write root "lib/net/sched_ok.ml"
       "let choose n = Util.pick n (* dtlint: allow R11 *)\n";
     write root "lib/net/clean.ml" "let double x = 2 * x\n";
     compile root
       [
         "vendor/util.ml"; "lib/net/mid.ml"; "lib/net/sched.ml";
         "lib/net/sched2.ml"; "lib/net/sched_ok.ml"; "lib/net/clean.ml";
       ];
     root)

let test_r11_delta_vs_syntactic () =
  (* The syntactic pass, given the protected file, finds nothing... *)
  check_renders "R1-R10 see no Random in sched.ml" []
    (R.lint_source ~filename:"lib/net/sched.ml" sched_src);
  (* ...the typed pass convicts it (and mid.ml), and only the entry
     points: sched2.ml's taint flows through protected mid.ml. *)
  let vs = lint_root (Lazy.force s11) in
  check_renders "laundered Random reaches lib/net"
    [ "R11 lib/net/mid.ml:1"; "R11 lib/net/sched.ml:1" ]
    vs

let test_r11_call_chain () =
  let vs = lint_root (Lazy.force s11) in
  let v =
    List.find (fun (v : R.violation) -> v.file = "lib/net/sched.ml") vs
  in
  Alcotest.(check bool) "message names the primitive" true
    (contains ~sub:"Random.int" v.message);
  Alcotest.(check bool) "chain passes through the wrapper" true
    (List.exists (contains ~sub:"Util.pick (vendor/util.ml:1)") v.notes);
  Alcotest.(check bool) "chain ends at the primitive" true
    (List.exists (contains ~sub:"Random.int") v.notes)

(* --- R12: mutable globals reachable from domain spawns ----------------- *)

let s12 =
  lazy
    (let root = mkdtemp () in
     (* the planted top-level ref, reached from a Domain.spawn closure *)
     write root "lib/exp/driver.ml"
       "let hits = ref 0\n\
        let bump () = incr hits\n\
        let launch () = Domain.spawn (fun () -> bump ())\n";
     (* Atomic.t is the sanctioned cross-domain cell *)
     write root "lib/exp/driver_ok.ml"
       "let hits = Atomic.make 0\n\
        let bump () = Atomic.incr hits\n\
        let launch () = Domain.spawn (fun () -> bump ())\n";
     write root "lib/exp/driver_sup.ml"
       "let hits = ref 0 (* dtlint: allow R12 *)\n\
        let bump () = incr hits\n\
        let launch () = Domain.spawn (fun () -> bump ())\n";
     (* mutable, but no spawner ever reaches it *)
     write root "lib/exp/lonely.ml" "let count = ref 0\nlet tick () = incr count\n";
     compile root
       [
         "lib/exp/driver.ml"; "lib/exp/driver_ok.ml"; "lib/exp/driver_sup.ml";
         "lib/exp/lonely.ml";
       ];
     root)

let test_r12_planted_ref () =
  let vs = lint_root (Lazy.force s12) in
  check_renders "only the raw ref behind a spawn is flagged"
    [ "R12 lib/exp/driver.ml:1" ] vs;
  let v = List.hd vs in
  Alcotest.(check bool) "chain starts at the spawner" true
    (List.exists (contains ~sub:"Driver.launch") v.notes);
  Alcotest.(check bool) "chain ends at the touched global" true
    (List.exists (contains ~sub:"touches Driver.hits") v.notes)

(* --- R13: Time.t instants vs raw int64 arithmetic ---------------------- *)

let s13 =
  lazy
    (let root = mkdtemp () in
     (* A stand-in Engine.Time: the double-underscore filename gives the
        module the same canonical name dune's mangling produces. *)
     write root "lib/engine/engine__Time.mli"
       "type t = private int64\nval of_ns : int64 -> t\nval to_ns : t -> int64\n";
     write root "lib/engine/engine__Time.ml"
       "type t = int64\nlet of_ns (n : int64) : t = n\nlet to_ns (t : t) : int64 = t\n";
     write root "lib/net/meter.ml"
       "let bad a = Int64.add (Engine__Time.to_ns a) 5L\n\
        let coerced (a : Engine__Time.t) = (a :> int64)\n\
        let sup (a : Engine__Time.t) = (a :> int64) (* dtlint: allow R13 *)\n\
        let ok_span (s : int64) = Int64.add s 5L\n";
     compile root
       [
         "lib/engine/engine__Time.mli"; "lib/engine/engine__Time.ml";
         "lib/net/meter.ml";
       ];
     root)

let test_r13_instant_hygiene () =
  let vs = lint_root (Lazy.force s13) in
  check_renders
    "to_ns into Int64.add and a :> coercion flagged; span math and the \
     suppressed line stay legal"
    [ "R13 lib/net/meter.ml:1"; "R13 lib/net/meter.ml:2" ]
    vs

(* --- R14: per-call allocation on the event hot path -------------------- *)

let s14 =
  lazy
    (let root = mkdtemp () in
     (* lib/engine/ring.ml is a whole-module hot root *)
     write root "lib/engine/ring.ml"
       "let push x l = x :: l\n\
        let use_partial l = List.map (push 1) l\n\
        let use_closure n l = List.map (fun x -> x + n) l\n\
        let ok_closure l = List.map (fun x -> x + 1) l\n\
        let to_float x = float_of_int x\n\
        let sup n l = List.map (fun x -> x * n) l (* dtlint: allow R14 *)\n";
     (* same shape, but nothing hot reaches it *)
     write root "lib/net/coldpath.ml" "let mk n l = List.map (fun x -> x + n) l\n";
     (* wheel-shaped module: lib/engine/int_ring.ml and lib/net/packet.ml
        are whole-module hot roots since the timing-wheel/SoA PR. The
        planted [weight] returns a boxed float out of a cascade-like
        bucket walk — exactly the regression the rule must catch in the
        real wheel's cascade. *)
     write root "lib/engine/int_ring.ml"
       "let cascade_weight buckets b = float_of_int (Array.length buckets * b)\n\
        let ok_int buckets b = Array.length buckets * b\n";
     write root "lib/net/packet.ml"
       "let free stack top p = stack.(top) <- p\n\
        let boxed_occupancy size live = float_of_int size *. float_of_int live\n";
     (* lib/net/ecmp.ml joined the hot set with the fat-tree PR: every
        ECMP port selection runs under Switch.receive. The planted
        [select] builds a fresh capturing closure per packet. *)
     write root "lib/net/ecmp.ml"
       "let select ports salt flow = Array.map (fun p -> p lxor (salt + flow)) ports\n\
        let ok_select ports idx = ports.(idx)\n";
     compile root
       [
         "lib/engine/ring.ml"; "lib/net/coldpath.ml";
         "lib/engine/int_ring.ml"; "lib/net/packet.ml"; "lib/net/ecmp.ml";
       ];
     root)

let test_r14_hot_path_allocs () =
  let vs = lint_root (Lazy.force s14) in
  check_renders
    "partial application, capturing closure and float return flagged; \
     capture-free closure, suppressed line and cold module stay legal"
    [
      "R14 lib/engine/int_ring.ml:1"; "R14 lib/engine/ring.ml:2";
      "R14 lib/engine/ring.ml:3"; "R14 lib/engine/ring.ml:5";
      "R14 lib/net/ecmp.ml:1"; "R14 lib/net/packet.ml:2";
    ]
    vs;
  let capture =
    List.find
      (fun (v : R.violation) -> v.file = "lib/engine/ring.ml" && v.line = 3)
      vs
  in
  Alcotest.(check bool) "capture message names the variable" true
    (contains ~sub:"captures n" capture.message)

(* --- determinism: reports are stable under module reordering ----------- *)

let render_full (v : R.violation) =
  String.concat " | " (render v :: v.message :: v.notes)

let test_reorder_stability =
  let prop units =
    let root = Lazy.force s11 in
    let baseline =
      List.map render_full (lint_root root)
    in
    let shuffled =
      TR.lint_units ~read_source:(reader root) units |> List.map render_full
    in
    shuffled = baseline
  in
  QCheck.Test.make ~count:30 ~name:"taint reports stable under module reordering"
    (QCheck.make
       (QCheck.Gen.shuffle_l (CL.load_tree ~roots:[ Lazy.force s11 ])))
    prop

let suites =
  [
    ( "typed_lint",
      [
        Alcotest.test_case "R11 delta vs syntactic pass" `Quick
          test_r11_delta_vs_syntactic;
        Alcotest.test_case "R11 call chain" `Quick test_r11_call_chain;
        Alcotest.test_case "R12 planted ref behind Domain.spawn" `Quick
          test_r12_planted_ref;
        Alcotest.test_case "R13 instant hygiene" `Quick test_r13_instant_hygiene;
        Alcotest.test_case "R14 hot-path allocations" `Quick
          test_r14_hot_path_allocs;
        QCheck_alcotest.to_alcotest test_reorder_stability;
      ] );
  ]
