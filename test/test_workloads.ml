(* Tests for the experiment runners. Configurations are scaled down (lower
   rates, shorter windows, few repeats) so `dune runtest` stays fast; the
   full paper-scale sweeps live in bench/. *)

module Time = Engine.Time
module L = Workloads.Longlived
module I = Workloads.Incast
module Cm = Workloads.Completion

(* Every concrete workload conforms to Workloads.Workload.S — the
   uniformity Exp.Spec relies on to describe scenarios declaratively.
   Every workload now carries optional faults/buffer arguments (Longlived
   also tracer/metrics) and Deadline takes the protocol bundle piecewise,
   so they conform through the same thin adapters Exp.Runner applies. *)
module _ : Workloads.Workload.S = struct
  include Workloads.Dynamic

  let run proto config = run proto config
end

module _ : Workloads.Workload.S = struct
  include Workloads.Convergence

  let run proto config = run proto config
end

module _ : Workloads.Workload.S = struct
  include Workloads.Longlived

  let run proto config = run proto config
end

module _ : Workloads.Workload.S = struct
  include Workloads.Incast

  let run proto config = run proto config
end

module _ : Workloads.Workload.S = struct
  include Workloads.Completion

  let run proto config = run proto config
end

module _ : Workloads.Workload.S = struct
  include Workloads.Fattree

  let run proto config = run proto config
end

module _ : Workloads.Workload.S = struct
  include Workloads.Deadline

  let run (proto : Dctcp.Protocol.t) config =
    run
      ~marking:(fun () -> proto.Dctcp.Protocol.marking ())
      ~echo:proto.Dctcp.Protocol.echo
      (Workloads.Deadline.Plain proto.Dctcp.Protocol.cc)
      config
end

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg

let small_longlived =
  {
    L.default_config with
    L.n_flows = 4;
    bottleneck_rate_bps = 1e9;
    warmup = Time.span_of_ms 30.;
    measure = Time.span_of_ms 50.;
    buffer_bytes = 300 * 1500;
  }

let dctcp_proto = Dctcp.Protocol.dctcp_pkts ~k:40 ()
let dt_proto = Dctcp.Protocol.dt_dctcp_pkts ~k1:30 ~k2:50 ()

let test_longlived_utilization () =
  let r = L.run dctcp_proto small_longlived in
  checkb
    (Printf.sprintf "utilization %.3f > 0.9" r.L.utilization)
    true (r.L.utilization > 0.9);
  checkb "no drops on big buffer" true (r.L.drops = 0)

let test_longlived_queue_near_threshold () =
  let r = L.run dctcp_proto small_longlived in
  checkb
    (Printf.sprintf "mean queue %.1f pkts sane" r.L.mean_queue_pkts)
    true
    (r.L.mean_queue_pkts > 5. && r.L.mean_queue_pkts < 120.);
  checkb "std smaller than mean scale" true
    (r.L.std_queue_pkts < 2. *. r.L.mean_queue_pkts);
  checkb "max at least mean" true (r.L.max_queue_pkts >= r.L.mean_queue_pkts)

let test_longlived_alpha_and_marks () =
  let r = L.run dctcp_proto small_longlived in
  checkb "alpha in (0,1)" true (r.L.mean_alpha > 0. && r.L.mean_alpha < 1.);
  checkb "marking active" true (r.L.marked_fraction > 0.)

let test_longlived_fairness () =
  let r = L.run dctcp_proto small_longlived in
  checkb
    (Printf.sprintf "jain %.3f high" r.L.jain_fairness)
    true (r.L.jain_fairness > 0.8)

let test_longlived_trace () =
  let cfg =
    { small_longlived with L.trace_sampling = Some (Time.span_of_us 100.) }
  in
  let r = L.run dctcp_proto cfg in
  match r.L.queue_series with
  | Some series ->
      checkb "many samples" true (Array.length series > 100);
      (* samples restricted to the measurement window *)
      let t0, _ = series.(0) in
      checkb "starts at warmup" true (t0 >= 0.029)
  | None -> Alcotest.fail "expected a queue series"

let test_longlived_no_trace_by_default () =
  let r = L.run dctcp_proto small_longlived in
  checkb "no series" true (r.L.queue_series = None)

let test_longlived_determinism () =
  let a = L.run dctcp_proto small_longlived in
  let b = L.run dctcp_proto small_longlived in
  checkf "same mean queue" a.L.mean_queue_pkts b.L.mean_queue_pkts;
  checkf "same throughput" a.L.throughput_bps b.L.throughput_bps

let test_longlived_seed_changes_details () =
  let a = L.run dctcp_proto small_longlived in
  let b = L.run dctcp_proto { small_longlived with L.seed = 2L } in
  (* different seeds stagger flows differently; exact equality would be
     suspicious *)
  checkb "different runs differ" true
    (a.L.mean_queue_pkts <> b.L.mean_queue_pkts
    || a.L.throughput_bps <> b.L.throughput_bps)

let test_longlived_dt_reduces_stddev () =
  (* The paper's Figure 11 claim at small scale: same config, DT-DCTCP
     shows no larger queue stddev than DCTCP. *)
  let cfg = { small_longlived with L.n_flows = 10 } in
  let rdc = L.run (Dctcp.Protocol.dctcp_pkts ~k:40 ()) cfg in
  let rdt = L.run (Dctcp.Protocol.dt_dctcp_pkts ~k1:30 ~k2:50 ()) cfg in
  checkb
    (Printf.sprintf "std dt %.2f <= std dctcp %.2f * 1.1" rdt.L.std_queue_pkts
       rdc.L.std_queue_pkts)
    true
    (rdt.L.std_queue_pkts <= (rdc.L.std_queue_pkts *. 1.1) +. 0.5)

let test_longlived_reno_fills_buffer () =
  (* Drop-tail Reno should drive a much larger queue than DCTCP. *)
  let rdc = L.run dctcp_proto small_longlived in
  let rreno = L.run (Dctcp.Protocol.reno ()) small_longlived in
  checkb
    (Printf.sprintf "reno queue %.0f > dctcp queue %.0f" rreno.L.mean_queue_pkts
       rdc.L.mean_queue_pkts)
    true
    (rreno.L.mean_queue_pkts > rdc.L.mean_queue_pkts)

let test_longlived_validation () =
  checkb "zero flows raises" true
    (match L.run dctcp_proto { small_longlived with L.n_flows = 0 } with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Incast --- *)

let incast_proto = Dctcp.Protocol.dctcp ~k_bytes:(32 * 1024) ()

let small_incast =
  { I.default_config with I.n_flows = 4; repeats = 3 }

let test_incast_small_completes () =
  let r = I.run incast_proto small_incast in
  checki "all repeats finish" 0 r.I.incomplete;
  (* exactly zero timeouts is the property under test *)
  checkb "no timeouts at small n" true (r.I.timeouts_per_run = 0.);  (* dtlint: allow R2 *)
  checkb
    (Printf.sprintf "goodput %.0f Mbps reasonable" (r.I.mean_goodput_bps /. 1e6))
    true
    (r.I.mean_goodput_bps > 0.3e9 && r.I.mean_goodput_bps < 1e9)

let test_incast_collapse_at_large_n () =
  let r = I.run incast_proto { small_incast with I.n_flows = 44 } in
  checkb "timeouts happen" true (r.I.timeouts_per_run > 0.);
  checkb
    (Printf.sprintf "goodput collapsed to %.0f Mbps" (r.I.mean_goodput_bps /. 1e6))
    true
    (r.I.mean_goodput_bps < 0.4e9)

let test_incast_completion_floor () =
  (* n * 64KB at 1 Gbps sets a serialization floor on completion. *)
  let r = I.run incast_proto small_incast in
  let floor_s =
    float_of_int (4 * 64 * 1024 * 8) /. 1e9
  in
  checkb "above line-rate floor" true (r.I.mean_completion >= floor_s *. 0.9);
  checkb "min <= mean <= max" true
    (r.I.min_goodput_bps <= r.I.mean_goodput_bps
    && r.I.mean_goodput_bps <= r.I.max_goodput_bps)

let test_incast_goodput_of_completion () =
  let g = I.goodput_of_completion small_incast 1. in
  checkf "bytes over time" (float_of_int (4 * 64 * 1024 * 8)) g;
  checkf "zero time" 0. (I.goodput_of_completion small_incast 0.)

let test_incast_determinism () =
  let a = I.run incast_proto small_incast in
  let b = I.run incast_proto small_incast in
  checkf "same goodput" a.I.mean_goodput_bps b.I.mean_goodput_bps

let test_incast_validation () =
  checkb "zero flows raises" true
    (match I.run incast_proto { small_incast with I.n_flows = 0 } with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "zero repeats raises" true
    (match I.run incast_proto { small_incast with I.repeats = 0 } with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Completion --- *)

let small_completion =
  { Cm.default_config with Cm.n_flows = 4; repeats = 3 }

let test_completion_floor () =
  let r = Cm.run incast_proto small_completion in
  (* 1 MB at 1 Gbps is ~8.4 ms serialization. *)
  checkb
    (Printf.sprintf "mean %.2f ms above floor" (r.Cm.mean_completion_s *. 1e3))
    true
    (r.Cm.mean_completion_s > 8e-3 && r.Cm.mean_completion_s < 50e-3);
  checki "complete" 0 r.Cm.incomplete;
  checkb "min <= mean <= max" true
    (r.Cm.min_completion_s <= r.Cm.mean_completion_s
    && r.Cm.mean_completion_s <= r.Cm.max_completion_s)

let test_completion_incast_spike () =
  let r = Cm.run incast_proto { small_completion with Cm.n_flows = 44 } in
  checkb
    (Printf.sprintf "timeout spike: %.1f ms" (r.Cm.mean_completion_s *. 1e3))
    true
    (r.Cm.mean_completion_s > 0.1)

let test_completion_percentiles () =
  let r = Cm.run incast_proto small_completion in
  checkb "p99 at least mean-ish" true
    (r.Cm.p99_completion_s >= r.Cm.mean_completion_s -. 1e-6);
  checkb "stddev finite" true (Float.is_finite r.Cm.stddev_completion_s)

let test_completion_validation () =
  checkb "zero flows raises" true
    (match Cm.run incast_proto { small_completion with Cm.n_flows = 0 } with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Deadline --- *)

let deadline_marking () =
  Dctcp.Marking_policies.single_threshold ~k_bytes:(32 * 1024)

let small_deadline =
  {
    Workloads.Deadline.default_config with
    Workloads.Deadline.n_flows = 4;
    repeats = 2;
  }

let test_deadline_generous_all_met () =
  let r =
    Workloads.Deadline.run ~marking:deadline_marking
      (Workloads.Deadline.Plain (Dctcp.Dctcp_cc.cc ()))
      {
        small_deadline with
        Workloads.Deadline.deadline = Time.span_of_sec 5.;
      }
  in
  checkf "all met" 1. r.Workloads.Deadline.met_fraction;
  checki "none incomplete" 0 r.Workloads.Deadline.incomplete;
  checkb "completion positive" true
    (r.Workloads.Deadline.mean_completion_s > 0.)

let test_deadline_impossible_none_met () =
  let r =
    Workloads.Deadline.run ~marking:deadline_marking
      (Workloads.Deadline.Plain (Dctcp.Dctcp_cc.cc ()))
      {
        small_deadline with
        Workloads.Deadline.deadline = Time.span_of_us 1.;
        deadline_spread = 0L;
      }
  in
  checkf "none met" 0. r.Workloads.Deadline.met_fraction

let test_deadline_aware_kind_runs () =
  let r =
    Workloads.Deadline.run ~marking:deadline_marking
      (Workloads.Deadline.Deadline_aware
         (fun ~total_segments ~deadline ->
           Dctcp.D2tcp_cc.cc ~total_segments ~deadline ()))
      { small_deadline with Workloads.Deadline.deadline = Time.span_of_sec 1. }
  in
  checkf "d2tcp meets generous deadlines" 1. r.Workloads.Deadline.met_fraction

let test_deadline_validation () =
  checkb "zero flows raises" true
    (match
       Workloads.Deadline.run ~marking:deadline_marking
         (Workloads.Deadline.Plain Tcp.Cc.reno)
         { small_deadline with Workloads.Deadline.n_flows = 0 }
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Dynamic --- *)

let small_dynamic =
  {
    Workloads.Dynamic.default_config with
    Workloads.Dynamic.duration = Time.span_of_ms 30.;
    warmup = Time.span_of_ms 20.;
    drain = Time.span_of_ms 50.;
    arrival_rate = 2000.;
  }

let test_dynamic_completes_short_flows () =
  let r = Workloads.Dynamic.run dctcp_proto small_dynamic in
  checkb "short flows arrived" true (r.Workloads.Dynamic.short_flows_started > 20);
  checki "all completed" r.Workloads.Dynamic.short_flows_started
    r.Workloads.Dynamic.short_flows_completed;
  checkb "fct positive" true (r.Workloads.Dynamic.fct_p50_s > 0.);
  checkb "p99 >= p50" true
    (r.Workloads.Dynamic.fct_p99_s >= r.Workloads.Dynamic.fct_p50_s);
  checkb "background kept running" true
    (r.Workloads.Dynamic.background_throughput_bps > 1e9)

let test_dynamic_reno_inflates_fct () =
  (* Reno needs ~50 ms of additive increase before its standing queue is
     in place; give the comparison a long warmup. *)
  let cfg =
    { small_dynamic with Workloads.Dynamic.warmup = Time.span_of_ms 120. }
  in
  let rdc = Workloads.Dynamic.run dctcp_proto cfg in
  let rreno = Workloads.Dynamic.run (Dctcp.Protocol.reno ()) cfg in
  checkb
    (Printf.sprintf "reno p50 %.0fus > dctcp p50 %.0fus"
       (rreno.Workloads.Dynamic.fct_p50_s *. 1e6)
       (rdc.Workloads.Dynamic.fct_p50_s *. 1e6))
    true
    (rreno.Workloads.Dynamic.fct_p50_s > rdc.Workloads.Dynamic.fct_p50_s);
  checkb "reno queue bigger" true
    (rreno.Workloads.Dynamic.mean_queue_pkts
    > rdc.Workloads.Dynamic.mean_queue_pkts)

let test_dynamic_determinism () =
  let a = Workloads.Dynamic.run dctcp_proto small_dynamic in
  let b = Workloads.Dynamic.run dctcp_proto small_dynamic in
  checki "same arrivals" a.Workloads.Dynamic.short_flows_started
    b.Workloads.Dynamic.short_flows_started;
  checkf "same p99" a.Workloads.Dynamic.fct_p99_s b.Workloads.Dynamic.fct_p99_s

let test_dynamic_validation () =
  checkb "bad arrival rate raises" true
    (match
       Workloads.Dynamic.run dctcp_proto
         { small_dynamic with Workloads.Dynamic.arrival_rate = 0. }
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Convergence --- *)

let small_convergence =
  {
    Workloads.Convergence.default_config with
    Workloads.Convergence.n_flows = 3;
    join_interval = Time.span_of_ms 60.;
    hold = Time.span_of_ms 60.;
    sample_window = Time.span_of_ms 5.;
  }

let test_convergence_shapes () =
  let r = Workloads.Convergence.run dctcp_proto small_convergence in
  let module C = Workloads.Convergence in
  checkb "windows recorded" true (Array.length r.C.shares > 10);
  checki "per-flow columns" 3 (Array.length r.C.shares.(0));
  checkf ~eps:1e-9 "window width" 5e-3 r.C.window_s

let test_convergence_fair_and_utilized () =
  let r = Workloads.Convergence.run dctcp_proto small_convergence in
  let module C = Workloads.Convergence in
  checkb
    (Printf.sprintf "jain %.3f" r.C.jain_steady)
    true (r.C.jain_steady > 0.85);
  checkb
    (Printf.sprintf "utilization %.3f" r.C.utilization_steady)
    true (r.C.utilization_steady > 0.9)

let test_convergence_times_finite () =
  let r = Workloads.Convergence.run dctcp_proto small_convergence in
  let module C = Workloads.Convergence in
  Array.iteri
    (fun i t ->
      checkb (Printf.sprintf "flow %d converged" i) true (not (Float.is_nan t));
      checkb "non-negative" true (t >= 0.))
    r.C.convergence_times_s

let test_convergence_staircase () =
  (* While only flow 0 is active it should hold (nearly) the whole link. *)
  let r = Workloads.Convergence.run dctcp_proto small_convergence in
  let module C = Workloads.Convergence in
  (* windows 4-10 fall inside flow 0's solo period after slow start *)
  let solo = r.C.shares.(8).(0) in
  checkb
    (Printf.sprintf "solo share %.0f Mbps" (solo /. 1e6))
    true
    (solo > 0.8e9);
  checkf "others idle" 0. r.C.shares.(8).(2)

let test_convergence_validation () =
  checkb "zero flows raises" true
    (match
       Workloads.Convergence.run dctcp_proto
         { small_convergence with Workloads.Convergence.n_flows = 0 }
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Instrument --- *)

let test_instrument_samples_flow () =
  let sim = Engine.Sim.create ~seed:3L () in
  let d =
    Net.Topology.dumbbell sim ~n_senders:1 ~bottleneck_rate_bps:1e9
      ~rtt:(Time.span_of_us 100.) ~buffer_bytes:(100 * 1500)
      ~marking:(Dctcp.Marking_policies.single_threshold ~k_bytes:(20 * 1500))
      ()
  in
  let flow =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
      ~dst:d.Net.Topology.receiver ~flow:0 ~cc:(Dctcp.Dctcp_cc.cc ()) ()
  in
  Tcp.Flow.start flow;
  let inst =
    Workloads.Instrument.attach sim flow ~period:(Time.span_of_us 100.)
      ~stop_at:(Time.of_ms 10.)
  in
  Engine.Sim.run ~until:(Time.of_ms 12.) sim;
  let cwnd = Workloads.Instrument.cwnd_series inst in
  checkb "many cwnd samples" true (Stats.Timeseries.length cwnd > 50);
  checkb "cwnd grew" true (Stats.Timeseries.max_value cwnd > 2.);
  checkb "alpha sampled" true
    (Stats.Timeseries.length (Workloads.Instrument.alpha_series inst) > 50);
  checkb "srtt eventually sampled" true
    (Stats.Timeseries.length (Workloads.Instrument.srtt_series inst) > 10);
  (* CSV export round-trips the sampled rows *)
  let file = Filename.temp_file "inst" ".csv" in
  let oc = open_out file in
  Workloads.Instrument.to_csv inst oc;
  close_out oc;
  let ic = open_in file in
  let lines = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove file;
  checki "header plus one row per sample" (Stats.Timeseries.length cwnd + 1)
    !lines

let test_instrument_detach () =
  let sim = Engine.Sim.create () in
  let d =
    Net.Topology.dumbbell sim ~n_senders:1 ~bottleneck_rate_bps:1e9
      ~rtt:(Time.span_of_us 100.) ~buffer_bytes:(100 * 1500)
      ~marking:(Net.Marking.none ()) ()
  in
  let flow =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
      ~dst:d.Net.Topology.receiver ~flow:0 ~cc:Tcp.Cc.reno ()
  in
  Tcp.Flow.start flow;
  let inst =
    Workloads.Instrument.attach sim flow ~period:(Time.span_of_us 100.)
      ~stop_at:(Time.of_ms 10.)
  in
  Workloads.Instrument.detach inst;
  Engine.Sim.run ~until:(Time.of_ms 2.) sim;
  checki "only the immediate sample" 1
    (Stats.Timeseries.length (Workloads.Instrument.cwnd_series inst))

let test_instrument_validation () =
  let sim = Engine.Sim.create () in
  let d =
    Net.Topology.dumbbell sim ~n_senders:1 ~bottleneck_rate_bps:1e9
      ~rtt:(Time.span_of_us 100.) ~buffer_bytes:(100 * 1500)
      ~marking:(Net.Marking.none ()) ()
  in
  let flow =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
      ~dst:d.Net.Topology.receiver ~flow:0 ~cc:Tcp.Cc.reno ()
  in
  checkb "bad period raises" true
    (match
       Workloads.Instrument.attach sim flow ~period:0L ~stop_at:(Time.of_ms 1.)
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Fattree --- *)

module Ft = Workloads.Fattree

let small_fattree =
  {
    Ft.default_config with
    Ft.k = 4;
    incast_fanin = 4;
    incast_bytes = 16 * 1024;
    long_flows = 2;
    long_bytes = 32 * 1024;
    time_cap = Time.span_of_ms 500.;
  }

let test_fattree_completes () =
  let r = Ft.run dctcp_proto small_fattree in
  (* k=4: 8 racks x 4 incast senders + 2 long flows. *)
  checki "flow count" 34 r.Ft.flows_total;
  checki "all complete" 0 r.Ft.incomplete;
  checki "fabric routes everything" 0 r.Ft.no_route_drops;
  checkb "slowdowns at least 1" true (r.Ft.slowdown_p50 >= 1.);
  checkb "percentiles ordered" true
    (r.Ft.slowdown_p50 <= r.Ft.slowdown_p95
    && r.Ft.slowdown_p95 <= r.Ft.slowdown_p99
    && r.Ft.slowdown_p99 <= r.Ft.slowdown_p999
    && r.Ft.slowdown_p999 <= r.Ft.slowdown_max)

let test_fattree_determinism () =
  let a = Ft.run dt_proto small_fattree in
  let b = Ft.run dt_proto small_fattree in
  checkb "bit-identical rerun" true (a = b);
  let c = Ft.run dt_proto { small_fattree with Ft.seed = 2L } in
  checkb "seed moves the details" true (a <> c)

let test_fattree_validation () =
  checkb "odd k raises" true
    (match Ft.run dctcp_proto { small_fattree with Ft.k = 5 } with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "zero fanin raises" true
    (match Ft.run dctcp_proto { small_fattree with Ft.incast_fanin = 0 } with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "faults rejected" true
    (match Ft.run ~faults:Fault.Plan.none dctcp_proto small_fattree with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suites =
  [
    ( "workloads.longlived",
      [
        Alcotest.test_case "utilization" `Quick test_longlived_utilization;
        Alcotest.test_case "queue near threshold" `Quick
          test_longlived_queue_near_threshold;
        Alcotest.test_case "alpha and marks" `Quick test_longlived_alpha_and_marks;
        Alcotest.test_case "fairness" `Quick test_longlived_fairness;
        Alcotest.test_case "queue trace" `Quick test_longlived_trace;
        Alcotest.test_case "no trace by default" `Quick
          test_longlived_no_trace_by_default;
        Alcotest.test_case "determinism" `Quick test_longlived_determinism;
        Alcotest.test_case "seed sensitivity" `Quick
          test_longlived_seed_changes_details;
        Alcotest.test_case "dt no worse stddev" `Slow
          test_longlived_dt_reduces_stddev;
        Alcotest.test_case "reno fills buffer" `Slow
          test_longlived_reno_fills_buffer;
        Alcotest.test_case "validation" `Quick test_longlived_validation;
      ] );
    ( "workloads.incast",
      [
        Alcotest.test_case "small fan-in completes" `Quick
          test_incast_small_completes;
        Alcotest.test_case "collapse at large n" `Quick
          test_incast_collapse_at_large_n;
        Alcotest.test_case "completion floor" `Quick test_incast_completion_floor;
        Alcotest.test_case "goodput_of_completion" `Quick
          test_incast_goodput_of_completion;
        Alcotest.test_case "determinism" `Quick test_incast_determinism;
        Alcotest.test_case "validation" `Quick test_incast_validation;
      ] );
    ( "workloads.completion",
      [
        Alcotest.test_case "floor" `Quick test_completion_floor;
        Alcotest.test_case "incast spike" `Quick test_completion_incast_spike;
        Alcotest.test_case "percentiles" `Quick test_completion_percentiles;
        Alcotest.test_case "validation" `Quick test_completion_validation;
      ] );
    ( "workloads.deadline",
      [
        Alcotest.test_case "generous deadlines all met" `Quick
          test_deadline_generous_all_met;
        Alcotest.test_case "impossible deadlines none met" `Quick
          test_deadline_impossible_none_met;
        Alcotest.test_case "deadline-aware sender kind" `Quick
          test_deadline_aware_kind_runs;
        Alcotest.test_case "validation" `Quick test_deadline_validation;
      ] );
    ( "workloads.dynamic",
      [
        Alcotest.test_case "short flows complete" `Quick
          test_dynamic_completes_short_flows;
        Alcotest.test_case "reno inflates FCT" `Slow
          test_dynamic_reno_inflates_fct;
        Alcotest.test_case "determinism" `Quick test_dynamic_determinism;
        Alcotest.test_case "validation" `Quick test_dynamic_validation;
      ] );
    ( "workloads.fattree",
      [
        Alcotest.test_case "small fabric completes" `Quick
          test_fattree_completes;
        Alcotest.test_case "determinism" `Quick test_fattree_determinism;
        Alcotest.test_case "validation" `Quick test_fattree_validation;
      ] );
    ( "workloads.instrument",
      [
        Alcotest.test_case "samples a flow" `Quick test_instrument_samples_flow;
        Alcotest.test_case "detach" `Quick test_instrument_detach;
        Alcotest.test_case "validation" `Quick test_instrument_validation;
      ] );
    ( "workloads.convergence",
      [
        Alcotest.test_case "result shapes" `Quick test_convergence_shapes;
        Alcotest.test_case "fair and utilized" `Quick
          test_convergence_fair_and_utilized;
        Alcotest.test_case "convergence times finite" `Quick
          test_convergence_times_finite;
        Alcotest.test_case "join staircase" `Quick test_convergence_staircase;
        Alcotest.test_case "validation" `Quick test_convergence_validation;
      ] );
  ]
