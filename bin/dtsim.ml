(* dtsim: command-line driver for the DT-DCTCP reproduction.

   Workload subcommands build an Exp.Spec from their flags and hand it to
   Exp.Runner, so a CLI run is the same artifact as a bench point: one
   spec, one manifest, reproducible from either. `dtsim sweep` runs whole
   named spec lists from Exp.Registry (optionally across domains); the
   stability/fluid subcommands are closed-form analysis and bypass the
   experiment layer. *)

open Cmdliner
module Time = Engine.Time
module Spec = Exp.Spec
module Runner = Exp.Runner
module Outcome = Exp.Outcome

(* --- shared protocol arguments --- *)

type proto_choice = P_dctcp | P_dt | P_reno | P_ecn_reno

let proto_conv =
  Arg.enum
    [
      ("dctcp", P_dctcp);
      ("dt-dctcp", P_dt);
      ("reno", P_reno);
      ("ecn-reno", P_ecn_reno);
    ]

let proto_arg =
  Arg.(
    value
    & opt proto_conv P_dctcp
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:"Transport protocol: dctcp, dt-dctcp, reno or ecn-reno.")

let k_arg =
  Arg.(
    value
    & opt int 40
    & info [ "k" ] ~docv:"PKTS" ~doc:"DCTCP marking threshold in packets.")

let k1_arg =
  Arg.(
    value
    & opt int 30
    & info [ "k1" ] ~docv:"PKTS"
        ~doc:"DT-DCTCP start-marking threshold (packets, rising).")

let k2_arg =
  Arg.(
    value
    & opt int 50
    & info [ "k2" ] ~docv:"PKTS"
        ~doc:"DT-DCTCP stop-marking threshold (packets, falling).")

let g_arg =
  Arg.(
    value
    & opt float (1. /. 16.)
    & info [ "g" ] ~docv:"G" ~doc:"DCTCP EWMA gain.")

let seed_arg =
  Arg.(
    value
    & opt int64 1L
    & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let segment_bytes = 1500

(* Simulation-style thresholds, packet-denominated. *)
let sim_protocol proto g k k1 k2 =
  match proto with
  | P_dctcp -> Spec.Dctcp { g; k_bytes = k * segment_bytes }
  | P_dt ->
      Spec.Dt_dctcp
        { g; k1_bytes = k1 * segment_bytes; k2_bytes = k2 * segment_bytes }
  | P_reno -> Spec.Reno
  | P_ecn_reno -> Spec.Ecn_reno { k_bytes = k * segment_bytes }

(* Testbed-style thresholds, KB-denominated. *)
let testbed_protocol proto g kkb k1kb k2kb =
  match proto with
  | P_dctcp -> Spec.Dctcp { g; k_bytes = kkb * 1024 }
  | P_dt ->
      Spec.Dt_dctcp { g; k1_bytes = k1kb * 1024; k2_bytes = k2kb * 1024 }
  | P_reno -> Spec.Reno
  | P_ecn_reno -> Spec.Ecn_reno { k_bytes = kkb * 1024 }

let proto_label p = (Spec.protocol_of p).Dctcp.Protocol.name

(* Run one spec; a failed workload is a CLI error, not a silent success. *)
let exec ?tracer ?on_sim ?analyze spec =
  let outcome = Runner.run_one ?tracer ?on_sim ?analyze spec in
  (match outcome.Runner.result with
  | Outcome.Failed { error; _ } ->
      Printf.eprintf "dtsim: %s\n" error;
      exit 1
  | Outcome.Done _ -> ());
  outcome

let write_manifest_opt ~file (outcome : Runner.outcome) =
  if file <> "" then begin
    let oc = open_out file in
    Obs.Manifest.write oc outcome.Runner.manifest;
    close_out oc;
    Printf.printf "run manifest        %s\n" file
  end

(* --- longlived --- *)

let parse_trace_events spec =
  match spec with
  | "" -> None
  | s ->
      let names = String.split_on_char ',' s in
      Some
        (List.map
           (fun name ->
             match Obs.Trace.cls_of_name name with
             | Some c -> c
             | None ->
                 Printf.eprintf
                   "dtsim: unknown trace event %S (known: %s)\n" name
                   (String.concat ", "
                      (List.map Obs.Trace.cls_name Obs.Trace.all_classes));
                 exit 2)
           names)

let longlived_cmd =
  let run proto g k k1 k2 seed n rate_gbps rtt_us warmup_ms measure_ms
      trace_csv cwnd_csv trace_out trace_events metrics_out analysis_out
      profile_out =
    let protocol = sim_protocol proto g k k1 k2 in
    (* The cwnd trace needs direct access to a flow, so it runs its own
       small scenario mirroring the workload's configuration. *)
    (if cwnd_csv <> "" then begin
       let bundle = Spec.protocol_of protocol in
       let sim = Engine.Sim.create ~seed () in
       let d =
         Net.Topology.dumbbell sim ~n_senders:n
           ~bottleneck_rate_bps:(rate_gbps *. 1e9)
           ~rtt:(Time.span_of_us rtt_us)
           ~buffer_bytes:(1000 * segment_bytes)
           ~marking:(bundle.Dctcp.Protocol.marking ())
           ()
       in
       let flows =
         Array.mapi
           (fun i src ->
             Tcp.Flow.create sim ~src ~dst:d.Net.Topology.receiver ~flow:i
               ~cc:bundle.Dctcp.Protocol.cc
               ~echo:bundle.Dctcp.Protocol.echo ())
           d.Net.Topology.senders
       in
       Array.iter Tcp.Flow.start flows;
       let stop = Time.of_ms (warmup_ms +. measure_ms) in
       let inst =
         Workloads.Instrument.attach sim flows.(0)
           ~period:(Time.span_of_us 100.) ~stop_at:stop
       in
       Engine.Sim.run ~until:stop sim;
       let oc = open_out cwnd_csv in
       Workloads.Instrument.to_csv inst oc;
       close_out oc;
       Printf.printf "cwnd trace          %s\n" cwnd_csv
     end);
    let config =
      {
        Workloads.Longlived.default_config with
        Workloads.Longlived.n_flows = n;
        bottleneck_rate_bps = rate_gbps *. 1e9;
        rtt = Time.span_of_us rtt_us;
        warmup = Time.span_of_ms warmup_ms;
        measure = Time.span_of_ms measure_ms;
        trace_sampling =
          (if trace_csv <> "" then Some (Time.span_of_us 20.) else None);
        seed;
      }
    in
    let spec =
      {
        Spec.name = "dtsim.longlived";
        protocol;
        workload = Spec.Longlived config;
        faults = None;
        buffer = Net.Buffer_mgr.Static;
      }
    in
    let classes = parse_trace_events trace_events in
    let trace_oc = if trace_out = "" then None else Some (open_out trace_out) in
    let tracer =
      match trace_oc with
      | Some oc ->
          let tr = Obs.Trace.create ?classes (Obs.Trace.Jsonl oc) in
          (* Header first: the analyzer config this spec implies plus the
             tracer's class filter, so `dtsim analyze` can replay the
             file with the exact online parameters. *)
          (match Runner.analysis_config spec with
          | Some acfg ->
              Obs.Json.write oc
                (Obs.Analyze.Header.to_json
                   {
                     Obs.Analyze.Header.config = acfg;
                     classes = Obs.Trace.enabled_classes tr;
                   });
              output_char oc '\n'
          | None -> ());
          tr
      | None -> Obs.Trace.null
    in
    let profiler =
      if profile_out = "" then None else Some (Obs.Selfprof.create ())
    in
    let on_sim =
      Option.map (fun p sim -> Obs.Selfprof.attach p sim) profiler
    in
    let outcome = exec ~tracer ?on_sim ~analyze:(analysis_out <> "") spec in
    (match trace_oc with
    | Some oc ->
        close_out oc;
        Printf.printf "event trace         %s\n" trace_out
    | None -> ());
    (match (analysis_out, outcome.Runner.manifest.Obs.Manifest.analysis) with
    | "", _ | _, None -> ()
    | file, Some analysis ->
        let oc = open_out file in
        Obs.Json.write oc analysis;
        output_char oc '\n';
        close_out oc;
        Printf.printf "analysis            %s\n" file);
    (match profiler with
    | None -> ()
    | Some p ->
        let oc = open_out profile_out in
        Obs.Json.write oc (Obs.Selfprof.to_json p);
        output_char oc '\n';
        close_out oc;
        Printf.printf "engine profile      %s (%d events, %d timed)\n"
          profile_out (Obs.Selfprof.total p)
          (Obs.Selfprof.sampled_total p));
    write_manifest_opt ~file:metrics_out outcome;
    let r =
      match outcome.Runner.result with
      | Outcome.Done (Outcome.Longlived r) -> r
      | _ -> assert false
    in
    let open Workloads.Longlived in
    Printf.printf "protocol            %s\n" (proto_label protocol);
    Printf.printf "flows               %d\n" n;
    Printf.printf "mean queue          %.2f pkts\n" r.mean_queue_pkts;
    Printf.printf "queue stddev        %.2f pkts\n" r.std_queue_pkts;
    Printf.printf "max queue           %.0f pkts\n" r.max_queue_pkts;
    Printf.printf "mean alpha          %.3f\n" r.mean_alpha;
    Printf.printf "throughput          %.3f Gbps (util %.3f)\n"
      (r.throughput_bps /. 1e9) r.utilization;
    Printf.printf "marked fraction     %.3f\n" r.marked_fraction;
    Printf.printf "drops / timeouts    %d / %d\n" r.drops r.timeouts;
    Printf.printf "Jain fairness       %.3f\n" r.jain_fairness;
    match (trace_csv, r.queue_series) with
    | "", _ | _, None -> ()
    | file, Some series ->
        let oc = open_out file in
        output_string oc "time_s,queue_pkts\n";
        Array.iter (fun (t, v) -> Printf.fprintf oc "%.9f,%g\n" t v) series;
        close_out oc;
        Printf.printf "queue trace         %s (%d samples)\n" file
          (Array.length series)
  in
  let n = Arg.(value & opt int 10 & info [ "n"; "flows" ] ~docv:"N") in
  let rate =
    Arg.(value & opt float 10. & info [ "rate-gbps" ] ~docv:"GBPS")
  in
  let rtt = Arg.(value & opt float 100. & info [ "rtt-us" ] ~docv:"US") in
  let warmup = Arg.(value & opt float 100. & info [ "warmup-ms" ] ~docv:"MS") in
  let measure =
    Arg.(value & opt float 200. & info [ "measure-ms" ] ~docv:"MS")
  in
  let trace =
    Arg.(
      value & opt string ""
      & info [ "trace-csv" ] ~docv:"FILE"
          ~doc:"Dump the sampled queue series to FILE.")
  in
  let cwnd_trace =
    Arg.(
      value & opt string ""
      & info [ "cwnd-csv" ] ~docv:"FILE"
          ~doc:"Dump flow 0's cwnd/alpha/srtt trace to FILE.")
  in
  let trace_out =
    Arg.(
      value & opt string ""
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the structured event stream (drops, marks, hysteresis \
             flips, cwnd cuts, RTOs, ...) to FILE as JSON lines.")
  in
  let trace_events =
    Arg.(
      value & opt string ""
      & info [ "trace-events" ] ~docv:"LIST"
          ~doc:
            "Comma-separated event classes to trace (e.g. \
             drop,mark,mark_state_flip). Default: all classes.")
  in
  let metrics_out =
    Arg.(
      value & opt string ""
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write an Obs.Manifest run-provenance record (seed, full \
             Exp.Spec, wall clock, events/s, final metrics snapshot) to \
             FILE as JSON.")
  in
  let analysis_out =
    Arg.(
      value & opt string ""
      & info [ "analysis-out" ] ~docv:"FILE"
          ~doc:
            "Run the streaming oscillation analyzer online (teed into the \
             trace stream) and write its JSON block to FILE. The same \
             block is embedded in --metrics-out, and `dtsim analyze` on a \
             --trace-out file reproduces it bit for bit.")
  in
  let profile_out =
    Arg.(
      value & opt string ""
      & info [ "profile-out" ] ~docv:"FILE"
          ~doc:
            "Attach the sampled per-event-class engine self-profiler and \
             write its JSON report to FILE.")
  in
  Cmd.v
    (Cmd.info "longlived"
       ~doc:"N long-lived flows over the 10 Gbps dumbbell (paper Figs 1, 10-12)")
    Term.(
      const run $ proto_arg $ g_arg $ k_arg $ k1_arg $ k2_arg $ seed_arg $ n
      $ rate $ rtt $ warmup $ measure $ trace $ cwnd_trace $ trace_out
      $ trace_events $ metrics_out $ analysis_out $ profile_out)

(* --- incast --- *)

let kkb_arg =
  Arg.(value & opt int 32 & info [ "k-kb" ] ~docv:"KB" ~doc:"K in KB.")

let k1kb_arg =
  Arg.(value & opt int 28 & info [ "k1-kb" ] ~docv:"KB" ~doc:"K1 (start) in KB.")

let k2kb_arg =
  Arg.(value & opt int 34 & info [ "k2-kb" ] ~docv:"KB" ~doc:"K2 (stop) in KB.")

let sack_arg =
  Arg.(
    value & flag
    & info [ "sack" ]
        ~doc:"Use selective-acknowledgment loss recovery instead of go-back-N.")

let metrics_out_arg =
  Arg.(
    value & opt string ""
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the run's Obs.Manifest record to FILE as JSON.")

let incast_cmd =
  let run proto g kkb k1kb k2kb seed n bytes_kb repeats jitter_us sack
      metrics_out =
    let protocol = testbed_protocol proto g kkb k1kb k2kb in
    let config =
      {
        Workloads.Incast.default_config with
        Workloads.Incast.n_flows = n;
        bytes_per_flow = bytes_kb * 1024;
        repeats;
        start_jitter = Time.span_of_us jitter_us;
        seed;
      }
    in
    let spec =
      {
        Spec.name = "dtsim.incast";
        protocol;
        workload = Spec.Incast { config; sack };
        faults = None;
        buffer = Net.Buffer_mgr.Static;
      }
    in
    let outcome = exec spec in
    write_manifest_opt ~file:metrics_out outcome;
    let r =
      match outcome.Runner.result with
      | Outcome.Done (Outcome.Incast r) -> r
      | _ -> assert false
    in
    let open Workloads.Incast in
    Printf.printf "protocol         %s\n" (proto_label protocol);
    Printf.printf "flows            %d x %d KB\n" n bytes_kb;
    Printf.printf "goodput          %.1f Mbps (min %.1f, max %.1f)\n"
      (r.mean_goodput_bps /. 1e6)
      (r.min_goodput_bps /. 1e6)
      (r.max_goodput_bps /. 1e6);
    Printf.printf "completion       %.2f ms (p99 %.2f)\n"
      (r.mean_completion *. 1e3)
      (r.p99_completion *. 1e3);
    Printf.printf "timeouts/run     %.1f\n" r.timeouts_per_run;
    Printf.printf "incomplete runs  %d\n" r.incomplete
  in
  let n = Arg.(value & opt int 32 & info [ "n"; "flows" ] ~docv:"N") in
  let bytes = Arg.(value & opt int 64 & info [ "bytes-kb" ] ~docv:"KB") in
  let repeats = Arg.(value & opt int 20 & info [ "repeats" ] ~docv:"R") in
  let jitter = Arg.(value & opt float 300. & info [ "jitter-us" ] ~docv:"US") in
  Cmd.v
    (Cmd.info "incast"
       ~doc:"Synchronized fan-in on the 1 Gbps testbed star (paper Fig 14)")
    Term.(
      const run $ proto_arg $ g_arg $ kkb_arg $ k1kb_arg $ k2kb_arg $ seed_arg
      $ n $ bytes $ repeats $ jitter $ sack_arg $ metrics_out_arg)

let completion_cmd =
  let run proto g kkb k1kb k2kb seed n total_kb repeats metrics_out =
    let protocol = testbed_protocol proto g kkb k1kb k2kb in
    let config =
      {
        Workloads.Completion.default_config with
        Workloads.Completion.n_flows = n;
        total_bytes = total_kb * 1024;
        repeats;
        seed;
      }
    in
    let spec =
      {
        Spec.name = "dtsim.completion";
        protocol;
        workload = Spec.Completion config;
        faults = None;
        buffer = Net.Buffer_mgr.Static;
      }
    in
    let outcome = exec spec in
    write_manifest_opt ~file:metrics_out outcome;
    let r =
      match outcome.Runner.result with
      | Outcome.Done (Outcome.Completion r) -> r
      | _ -> assert false
    in
    let open Workloads.Completion in
    Printf.printf "protocol        %s\n" (proto_label protocol);
    Printf.printf "flows           %d sharing %d KB\n" n total_kb;
    Printf.printf "completion      mean %.2f ms  min %.2f  max %.2f  p99 %.2f\n"
      (r.mean_completion_s *. 1e3)
      (r.min_completion_s *. 1e3)
      (r.max_completion_s *. 1e3)
      (r.p99_completion_s *. 1e3);
    Printf.printf "stddev          %.2f ms\n" (r.stddev_completion_s *. 1e3);
    Printf.printf "timeouts/run    %.1f\n" r.timeouts_per_run
  in
  let n = Arg.(value & opt int 32 & info [ "n"; "flows" ] ~docv:"N") in
  let total = Arg.(value & opt int 1024 & info [ "total-kb" ] ~docv:"KB") in
  let repeats = Arg.(value & opt int 20 & info [ "repeats" ] ~docv:"R") in
  Cmd.v
    (Cmd.info "completion"
       ~doc:"Scatter-gather query completion time (paper Fig 15)")
    Term.(
      const run $ proto_arg $ g_arg $ kkb_arg $ k1kb_arg $ k2kb_arg $ seed_arg
      $ n $ total $ repeats $ metrics_out_arg)

(* --- stability --- *)

let stability_cmd =
  let run n rate_gbps rtt_us g k k1 k2 critical locus_csv =
    let c = rate_gbps *. 1e9 /. (float_of_int segment_bytes *. 8.) in
    let r0 = rtt_us *. 1e-6 in
    let kf = float_of_int k in
    let k1f = float_of_int k1 and k2f = float_of_int k2 in
    if critical then begin
      let dc =
        Control.Stability.critical_n ~c ~r0 ~g ~n_max:300
          ~verdict_at:(fun p -> Control.Stability.dctcp p ~k:kf)
          ()
      in
      let dt =
        Control.Stability.critical_n ~c ~r0 ~g ~n_max:300
          ~verdict_at:(fun p ->
            Control.Stability.dt_dctcp p ~k1:k1f ~k2:k2f)
          ()
      in
      let str = function Some n -> string_of_int n | None -> "> 300" in
      Printf.printf "critical N (oscillation onset):\n";
      Printf.printf "  DCTCP    (K=%d)        %s\n" k (str dc);
      Printf.printf "  DT-DCTCP (K1=%d,K2=%d)  %s\n" k1 k2 (str dt)
    end
    else begin
      let params = Control.Plant.params ~c ~n ~r0 ~g in
      Printf.printf "operating point: W0 = %.2f pkts, alpha0 = %.3f\n"
        (Control.Plant.w0 params)
        (Control.Plant.alpha0 params);
      let vdc = Control.Stability.dctcp params ~k:kf in
      let vdt = Control.Stability.dt_dctcp params ~k1:k1f ~k2:k2f in
      Format.printf "DCTCP    (K=%d):        %a, gain margin %.3f@." k
        Control.Stability.pp_verdict vdc
        (Control.Stability.dctcp_margin params ~k:kf);
      Format.printf "DT-DCTCP (K1=%d,K2=%d):  %a, gain margin %.3f@." k1 k2
        Control.Stability.pp_verdict vdt
        (Control.Stability.dt_dctcp_margin params ~k1:k1f ~k2:k2f)
    end;
    if locus_csv <> "" then begin
      let params = Control.Plant.params ~c ~n ~r0 ~g in
      let w = Control.Nyquist.log_space ~lo:1e2 ~hi:1e7 ~n:2000 in
      let locus =
        Control.Nyquist.plant_locus params ~k0:(1. /. kf) ~w
      in
      let oc = open_out locus_csv in
      output_string oc "w_rad_s,re,im\n";
      Array.iter
        (fun (p : Control.Nyquist.point) ->
          Printf.fprintf oc "%g,%g,%g\n" p.Control.Nyquist.param
            p.Control.Nyquist.z.Control.Cplx.re
            p.Control.Nyquist.z.Control.Cplx.im)
        locus;
      close_out oc;
      Printf.printf "locus written to %s\n" locus_csv
    end
  in
  let n = Arg.(value & opt int 60 & info [ "n"; "flows" ] ~docv:"N") in
  let rate = Arg.(value & opt float 10. & info [ "rate-gbps" ] ~docv:"GBPS") in
  let rtt = Arg.(value & opt float 100. & info [ "rtt-us" ] ~docv:"US") in
  let critical =
    Arg.(
      value & flag
      & info [ "critical" ] ~doc:"Scan N for the first predicted oscillation.")
  in
  let locus =
    Arg.(
      value & opt string ""
      & info [ "locus-csv" ] ~docv:"FILE" ~doc:"Dump the K0 G(jw) locus.")
  in
  Cmd.v
    (Cmd.info "stability"
       ~doc:"Describing-function stability analysis (paper Fig 9, Theorems 1-2)")
    Term.(
      const run $ n $ rate $ rtt $ g_arg $ k_arg $ k1_arg $ k2_arg $ critical
      $ locus)

(* --- fluid --- *)

let fluid_cmd =
  let run n rate_gbps rtt_us g k k1 k2 dt_proto t_end_ms csv =
    let c = rate_gbps *. 1e9 /. (float_of_int segment_bytes *. 8.) in
    let marking =
      if dt_proto then
        Fluid.Dctcp_fluid.Double (float_of_int k1, float_of_int k2)
      else Fluid.Dctcp_fluid.Single (float_of_int k)
    in
    let params =
      Fluid.Dctcp_fluid.make ~n ~c ~r0:(rtt_us *. 1e-6) ~g ~marking ()
    in
    let traj =
      Fluid.Dctcp_fluid.simulate params ~t_end:(t_end_ms *. 1e-3) ()
    in
    let discard = t_end_ms *. 1e-3 /. 3. in
    let mean, std = Fluid.Dctcp_fluid.queue_stats traj ~discard in
    Printf.printf "fluid model (%s)\n"
      (if dt_proto then Printf.sprintf "DT, K1=%d K2=%d" k1 k2
       else Printf.sprintf "single, K=%d" k);
    Printf.printf "queue mean %.2f pkts, stddev %.2f, swing amplitude %.2f\n"
      mean std
      (Fluid.Dctcp_fluid.oscillation_amplitude traj ~discard);
    if csv <> "" then begin
      let oc = open_out csv in
      output_string oc "t_s,w_pkts,alpha,q_pkts,p\n";
      Array.iteri
        (fun i t ->
          Printf.fprintf oc "%g,%g,%g,%g,%g\n" t traj.Fluid.Dctcp_fluid.w.(i)
            traj.Fluid.Dctcp_fluid.alpha.(i)
            traj.Fluid.Dctcp_fluid.q.(i)
            traj.Fluid.Dctcp_fluid.p.(i))
        traj.Fluid.Dctcp_fluid.times;
      close_out oc;
      Printf.printf "trajectory written to %s\n" csv
    end
  in
  let n = Arg.(value & opt int 10 & info [ "n"; "flows" ] ~docv:"N") in
  let rate = Arg.(value & opt float 10. & info [ "rate-gbps" ] ~docv:"GBPS") in
  let rtt = Arg.(value & opt float 100. & info [ "rtt-us" ] ~docv:"US") in
  let dt_flag =
    Arg.(value & flag & info [ "dt" ] ~doc:"Use the DT-DCTCP hysteresis.")
  in
  let t_end = Arg.(value & opt float 100. & info [ "t-end-ms" ] ~docv:"MS") in
  let csv =
    Arg.(
      value & opt string ""
      & info [ "csv" ] ~docv:"FILE" ~doc:"Dump the full trajectory.")
  in
  Cmd.v
    (Cmd.info "fluid" ~doc:"Integrate the DCTCP fluid model (paper Eqs 1-3)")
    Term.(
      const run $ n $ rate $ rtt $ g_arg $ k_arg $ k1_arg $ k2_arg $ dt_flag
      $ t_end $ csv)

(* --- deadline --- *)

let deadline_cmd =
  let run g kkb seed n bytes_kb repeats deadline_ms spread_ms d2tcp
      metrics_out =
    let config =
      {
        Workloads.Deadline.default_config with
        Workloads.Deadline.n_flows = n;
        bytes_per_flow = bytes_kb * 1024;
        repeats;
        deadline = Time.span_of_ms deadline_ms;
        deadline_spread = Time.span_of_ms spread_ms;
        seed;
      }
    in
    let spec =
      {
        Spec.name = "dtsim.deadline";
        protocol = Spec.Dctcp { g; k_bytes = kkb * 1024 };
        workload = Spec.Deadline { config; d2tcp };
        faults = None;
        buffer = Net.Buffer_mgr.Static;
      }
    in
    let outcome = exec spec in
    write_manifest_opt ~file:metrics_out outcome;
    let r =
      match outcome.Runner.result with
      | Outcome.Done (Outcome.Deadline r) -> r
      | _ -> assert false
    in
    let open Workloads.Deadline in
    Printf.printf "sender           %s\n"
      (if d2tcp then "D2TCP" else "DCTCP");
    Printf.printf "deadlines met    %.1f%%\n" (100. *. r.met_fraction);
    Printf.printf "completion mean  %.2f ms (p99 %.2f)\n"
      (r.mean_completion_s *. 1e3)
      (r.p99_completion_s *. 1e3);
    Printf.printf "timeouts/run     %.1f, unfinished flows %d\n"
      r.timeouts_per_run r.incomplete
  in
  let n = Arg.(value & opt int 16 & info [ "n"; "flows" ] ~docv:"N") in
  let bytes = Arg.(value & opt int 64 & info [ "bytes-kb" ] ~docv:"KB") in
  let repeats = Arg.(value & opt int 20 & info [ "repeats" ] ~docv:"R") in
  let deadline =
    Arg.(value & opt float 20. & info [ "deadline-ms" ] ~docv:"MS")
  in
  let spread = Arg.(value & opt float 20. & info [ "spread-ms" ] ~docv:"MS") in
  let d2tcp =
    Arg.(value & flag & info [ "d2tcp" ] ~doc:"Deadline-aware D2TCP backoff.")
  in
  Cmd.v
    (Cmd.info "deadline"
       ~doc:"Deadline-constrained fan-in, DCTCP or D2TCP senders (extension)")
    Term.(
      const run $ g_arg $ kkb_arg $ seed_arg $ n $ bytes $ repeats $ deadline
      $ spread $ d2tcp $ metrics_out_arg)

(* --- dynamic --- *)

let dynamic_cmd =
  let run proto g k k1 k2 seed rate_per_s segs duration_ms metrics_out =
    let protocol = sim_protocol proto g k k1 k2 in
    let config =
      {
        Workloads.Dynamic.default_config with
        Workloads.Dynamic.arrival_rate = rate_per_s;
        short_flow_segments = segs;
        duration = Time.span_of_ms duration_ms;
        seed;
      }
    in
    let spec =
      {
        Spec.name = "dtsim.dynamic";
        protocol;
        workload = Spec.Dynamic config;
        faults = None;
        buffer = Net.Buffer_mgr.Static;
      }
    in
    let outcome = exec spec in
    write_manifest_opt ~file:metrics_out outcome;
    let r =
      match outcome.Runner.result with
      | Outcome.Done (Outcome.Dynamic r) -> r
      | _ -> assert false
    in
    let open Workloads.Dynamic in
    Printf.printf "protocol           %s\n" (proto_label protocol);
    Printf.printf "short flows        %d started, %d completed\n"
      r.short_flows_started r.short_flows_completed;
    Printf.printf "FCT p50/p99/max    %.0f / %.0f / %.0f us\n"
      (r.fct_p50_s *. 1e6) (r.fct_p99_s *. 1e6) (r.fct_max_s *. 1e6);
    Printf.printf "background tput    %.2f Gbps\n"
      (r.background_throughput_bps /. 1e9);
    Printf.printf "queue              %.1f +- %.1f pkts\n" r.mean_queue_pkts
      r.std_queue_pkts
  in
  let rate =
    Arg.(value & opt float 5000. & info [ "arrivals-per-s" ] ~docv:"R")
  in
  let segs = Arg.(value & opt int 14 & info [ "short-segments" ] ~docv:"S") in
  let duration =
    Arg.(value & opt float 200. & info [ "duration-ms" ] ~docv:"MS")
  in
  Cmd.v
    (Cmd.info "dynamic"
       ~doc:"Mixed traffic: background long flows + Poisson short flows \
             (extension)")
    Term.(
      const run $ proto_arg $ g_arg $ k_arg $ k1_arg $ k2_arg $ seed_arg
      $ rate $ segs $ duration $ metrics_out_arg)

(* --- convergence --- *)

let convergence_cmd =
  let run proto g k k1 k2 seed n interval_ms metrics_out =
    let protocol = sim_protocol proto g k k1 k2 in
    let config =
      {
        Workloads.Convergence.default_config with
        Workloads.Convergence.n_flows = n;
        join_interval = Time.span_of_ms interval_ms;
        hold = Time.span_of_ms interval_ms;
        seed;
      }
    in
    let spec =
      {
        Spec.name = "dtsim.convergence";
        protocol;
        workload = Spec.Convergence config;
        faults = None;
        buffer = Net.Buffer_mgr.Static;
      }
    in
    let outcome = exec spec in
    write_manifest_opt ~file:metrics_out outcome;
    let r =
      match outcome.Runner.result with
      | Outcome.Done (Outcome.Convergence r) -> r
      | _ -> assert false
    in
    let module C = Workloads.Convergence in
    Printf.printf "protocol             %s\n" (proto_label protocol);
    Printf.printf "convergence times    %s ms\n"
      (String.concat ", "
         (Array.to_list
            (Array.map
               (fun t ->
                 if Float.is_nan t then "-"
                 else Printf.sprintf "%.0f" (t *. 1e3))
               r.C.convergence_times_s)));
    Printf.printf "Jain (all active)    %.3f\n" r.C.jain_steady;
    Printf.printf "utilization          %.3f\n" r.C.utilization_steady
  in
  let n = Arg.(value & opt int 5 & info [ "n"; "flows" ] ~docv:"N") in
  let interval =
    Arg.(value & opt float 500. & info [ "join-interval-ms" ] ~docv:"MS")
  in
  Cmd.v
    (Cmd.info "convergence"
       ~doc:"Fair-share convergence under flow churn (extension)")
    Term.(
      const run $ proto_arg $ g_arg $ k_arg $ k1_arg $ k2_arg $ seed_arg $ n
      $ interval $ metrics_out_arg)

(* --- sweep --- *)

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "dtsim: %s\n" msg;
      exit 2)
    fmt

let read_file file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let specs_of_file file =
  match Obs.Json.parse (read_file file) with
  | Error e -> fail "%s: %s" file e
  | Ok (Obs.Json.List items) ->
      List.map
        (fun j ->
          match Spec.of_json j with
          | Ok s -> s
          | Error e -> fail "%s: %s" file e)
        items
  | Ok j -> (
      match Spec.of_json j with
      | Ok s -> [ s ]
      | Error e -> fail "%s: %s" file e)

let safe_filename name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    name

let write_outcome_files dir (outcomes : Runner.outcome array) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Array.iteri
    (fun i o ->
      let base =
        Printf.sprintf "%03d-%s" i (safe_filename o.Runner.spec.Spec.name)
      in
      let manifest = Filename.concat dir (base ^ ".manifest.json") in
      let oc = open_out manifest in
      Obs.Manifest.write oc o.Runner.manifest;
      close_out oc;
      let result = Filename.concat dir (base ^ ".result.json") in
      let oc = open_out result in
      Obs.Json.write oc (Outcome.to_json o.Runner.result);
      output_char oc '\n';
      close_out oc)
    outcomes;
  Printf.printf "wrote %d manifest/result pairs under %s\n"
    (Array.length outcomes) dir

(* --verify-serial: the sweep's parallel outcomes must be bit-identical to
   a serial rerun, and every manifest must reconstruct its exact spec. *)
let verify_against_serial specs (outcomes : Runner.outcome array) =
  let serial = Runner.run ~jobs:1 specs in
  let failures = ref 0 in
  Array.iteri
    (fun i (o : Runner.outcome) ->
      let s = serial.(i) in
      if not (Outcome.equal o.Runner.result s.Runner.result) then begin
        incr failures;
        Printf.eprintf "MISMATCH %s: parallel and serial results differ\n"
          o.Runner.spec.Spec.name
      end;
      let reconstructed =
        match
          List.find_opt
            (fun (k, _) -> String.equal k "spec")
            o.Runner.manifest.Obs.Manifest.params
        with
        | None -> Error "manifest has no spec param"
        | Some (_, j) -> Spec.of_json j
      in
      match reconstructed with
      | Error e ->
          incr failures;
          Printf.eprintf "MANIFEST %s: %s\n" o.Runner.spec.Spec.name e
      | Ok s ->
          if not (Spec.equal s o.Runner.spec) then begin
            incr failures;
            Printf.eprintf
              "MANIFEST %s: reconstructed spec differs from original\n"
              o.Runner.spec.Spec.name
          end)
    outcomes;
  if !failures > 0 then fail "%d verification failure(s)" !failures;
  Printf.printf
    "verified: %d runs bit-identical to serial, all specs reconstruct \
     from manifests\n"
    (Array.length outcomes)

let sweep_cmd =
  let run entry spec_file jobs out_dir verify list_entries =
    if list_entries then begin
      Printf.printf "%-26s %s\n" "NAME" "DESCRIPTION";
      List.iter
        (fun (e : Exp.Registry.entry) ->
          Printf.printf "%-26s %s (%d specs)\n" e.Exp.Registry.name
            e.Exp.Registry.doc
            (List.length (e.Exp.Registry.specs ())))
        (Exp.Registry.all ());
      exit 0
    end;
    let specs =
      match (entry, spec_file) with
      | "", "" -> fail "pass one of --name (see --list) or --spec FILE"
      | name, "" -> (
          match Exp.Registry.find name with
          | Some e -> e.Exp.Registry.specs ()
          | None ->
              fail "unknown sweep %S; known: %s" name
                (String.concat ", " (Exp.Registry.names ())))
      | "", file -> specs_of_file file
      | _ -> fail "--name and --spec are mutually exclusive"
    in
    if specs = [] then fail "empty spec list";
    Printf.printf "sweep: %d specs, %d job(s)\n%!" (List.length specs) jobs;
    let outcomes, wall_s =
      Obs.Profile.time (fun () -> Runner.run ~jobs specs)
    in
    Array.iter
      (fun (o : Runner.outcome) ->
        Printf.printf "  %-40s %s\n" o.Runner.spec.Spec.name
          (Outcome.summary o.Runner.result))
      outcomes;
    let failed =
      Array.fold_left
        (fun acc (o : Runner.outcome) ->
          match o.Runner.result with
          | Outcome.Failed _ -> acc + 1
          | Outcome.Done _ -> acc)
        0 outcomes
    in
    Printf.printf "%d/%d runs ok in %.1fs wall clock\n"
      (Array.length outcomes - failed)
      (Array.length outcomes) wall_s;
    if out_dir <> "" then write_outcome_files out_dir outcomes;
    if verify then verify_against_serial specs outcomes;
    if failed > 0 then exit 1
  in
  let entry =
    Arg.(
      value & opt string ""
      & info [ "name" ] ~docv:"ENTRY"
          ~doc:"Run a named sweep from Exp.Registry (see --list).")
  in
  let spec_file =
    Arg.(
      value & opt string ""
      & info [ "spec" ] ~docv:"FILE"
          ~doc:
            "Run specs from FILE: one Exp.Spec JSON object, or a JSON list \
             of them. A manifest's \"spec\" param is accepted as-is.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Fan runs across N domains (results stay in spec order).")
  in
  let out_dir =
    Arg.(
      value & opt string ""
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:"Write per-run manifest and result JSON files under DIR.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify-serial" ]
          ~doc:
            "After the sweep, rerun serially and fail unless results are \
             bit-identical and every manifest reconstructs its spec.")
  in
  let list_entries =
    Arg.(value & flag & info [ "list" ] ~doc:"List registry sweeps and exit.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
        "Run a registry or file-defined spec list through Exp.Runner, \
         optionally across domains")
    Term.(
      const run $ entry $ spec_file $ jobs $ out_dir $ verify $ list_entries)

(* --- analyze: offline replay of a JSONL trace through the exact
   streaming analyzers a live run uses --- *)

let analyze_cmd =
  let module An = Obs.Analyze in
  let run file out =
    let ic = try open_in file with Sys_error e -> fail "%s" e in
    let next_line () = try Some (input_line ic) with End_of_file -> None in
    (* First non-blank line must be the header record: it carries the
       analyzer configuration the writing run used, which is what makes
       the offline result bit-identical to the online one. *)
    let line_no = ref 0 in
    let rec first_json () =
      match next_line () with
      | None -> fail "%s: empty trace file" file
      | Some l ->
          incr line_no;
          if String.trim l = "" then first_json ()
          else begin
            match Obs.Json.parse l with
            | Error e -> fail "%s:%d: %s" file !line_no e
            | Ok j -> j
          end
    in
    let header_json = first_json () in
    if not (An.Header.is_header header_json) then
      fail
        "%s: first record is not a trace header (traces written by `dtsim \
         longlived --trace-out` carry one; a headerless file cannot be \
         analyzed offline)"
        file;
    let header =
      match An.Header.of_json header_json with
      | Ok h -> h
      | Error e -> fail "%s: %s" file e
    in
    let cfg = header.An.Header.config in
    let missing =
      List.filter
        (fun c -> not (List.mem c header.An.Header.classes))
        An.required_classes
    in
    if missing <> [] then
      Printf.eprintf
        "dtsim analyze: warning: trace was recorded without class(es) %s; \
         the analysis will under-report them\n"
        (String.concat ", " (List.map Obs.Trace.cls_name missing));
    (* The on_sample hook collects the resampled series for the offline
       FFT cross-check; the analyzer itself never buffers it. *)
    let samples = ref [] in
    let an =
      An.create ~on_sample:(fun x -> samples := x :: !samples) cfg
    in
    let tracer = An.tracer an in
    let rec replay () =
      match next_line () with
      | None -> ()
      | Some l ->
          incr line_no;
          (if String.trim l <> "" then
             match Obs.Json.parse l with
             | Error e -> fail "%s:%d: %s" file !line_no e
             | Ok j -> (
                 match Obs.Trace.record_of_json j with
                 | Ok r -> Obs.Trace.emit tracer r
                 | Error e -> fail "%s:%d: %s" file !line_no e));
          replay ()
    in
    replay ();
    close_in ic;
    An.finalize an;
    let s = An.summary an in
    Printf.printf "trace               %s (%d records, %.3f s)\n" file
      s.An.records s.An.duration_s;
    (match cfg.An.band_bytes with
    | Some (lo, hi) ->
        Printf.printf "marking band        [%d, %d] bytes\n" lo hi
    | None ->
        Printf.printf "marking band        none (cycle detector disabled)\n");
    Printf.printf "occupancy           %.2f pkts mean, %.2f std\n"
      s.An.occ_mean_pkts s.An.occ_std_pkts;
    Printf.printf
      "cycles              %d (amplitude mean %.1f pkts, max %.1f, period \
       mean %.3f ms)\n"
      s.An.cycles s.An.amp_mean_pkts s.An.amp_max_pkts
      (s.An.period_mean_s *. 1e3);
    Printf.printf "marking flip rate   %.1f Hz\n" s.An.flip_rate_hz;
    Printf.printf "sync index          mean %.3f, max %.3f\n" s.An.sync_mean
      s.An.sync_max;
    (match (s.An.dominant_freq_hz, An.spectrum_note an) with
    | Some f, _ ->
        Printf.printf "dominant frequency  %.1f Hz (autocorr, period %.3f ms)\n"
          f (1e3 /. f)
    | None, Some note -> Printf.printf "dominant frequency  none: %s\n" note
    | None, None -> Printf.printf "dominant frequency  none\n");
    (* Independent cross-check: FFT over the buffered series. Silence
       would be indistinguishable from "no oscillation", so the two
       degenerate verdicts print their explicit diagnostics. *)
    let series = Array.of_list (List.rev !samples) in
    let sample_rate_hz = 1e9 /. Int64.to_float cfg.An.sample_period in
    (match Stats.Spectrum.analyze ~samples:series ~sample_rate_hz with
    | Stats.Spectrum.Peak p ->
        Printf.printf "FFT cross-check     %.1f Hz\n"
          p.Stats.Spectrum.frequency_hz
    | v -> (
        match Stats.Spectrum.verdict_note v with
        | Some note -> Printf.printf "FFT cross-check     none: %s\n" note
        | None -> assert false));
    if out <> "" then begin
      let oc = open_out out in
      Obs.Json.write oc (An.to_json an);
      output_char oc '\n';
      close_out oc;
      Printf.printf "analysis            %s\n" out
    end
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:"JSONL event trace written by `dtsim longlived --trace-out`.")
  in
  let out =
    Arg.(
      value & opt string ""
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the analysis JSON block to FILE (bit-identical to the \
             block an online `--analysis-out` run embeds).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Replay a JSONL trace offline through the same streaming \
          oscillation analyzers a live run tees into")
    Term.(const run $ file $ out)

let () =
  let doc =
    "reproduction of 'Ease the Queue Oscillation: Analysis and Enhancement \
     of DCTCP' (ICDCS 2013)"
  in
  let info = Cmd.info "dtsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            longlived_cmd;
            incast_cmd;
            completion_cmd;
            stability_cmd;
            fluid_cmd;
            deadline_cmd;
            dynamic_cmd;
            convergence_cmd;
            sweep_cmd;
            analyze_cmd;
          ]))
